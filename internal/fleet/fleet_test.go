package fleet

import (
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/mmpu"
	"repro/internal/repair"
)

// testOrg is a 6-bank, 12-crossbar fleet of the minimum 45×45 geometry.
func testOrg() mmpu.Organization { return mmpu.Custom(45, 6, 2) }

func testCfg(workers int) Config {
	return Config{
		Org: testOrg(), M: 15, K: 2, ECCEnabled: true,
		Workers: workers, Seed: 42,
	}
}

// TestDeterministicAcrossWorkers is the core concurrency contract: the
// same organization, scenario, and seed must yield an identical Result for
// every worker count.
func TestDeterministicAcrossWorkers(t *testing.T) {
	scenarios := []Workload{
		Uniform{OpsPerCrossbar: 2},
		HotBank{Jobs: 24, Skew: 1.5},
		MixedScrub{Rounds: 2, SIMDPerRound: 1},
		FaultStorm{Bursts: 2, SER: 1e6, Hours: 1},
	}
	for _, w := range scenarios {
		t.Run(w.Name(), func(t *testing.T) {
			ref, err := Run(testCfg(1), w)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 4, 6, 99} {
				got, err := Run(testCfg(workers), w)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", workers, ref, workers, got)
				}
			}
		})
	}
}

func TestUniformCounts(t *testing.T) {
	org := testOrg()
	res, err := Run(testCfg(3), Uniform{OpsPerCrossbar: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "uniform" {
		t.Fatalf("scenario = %q", res.Scenario)
	}
	if want := int64(org.Crossbars()); res.Jobs != want {
		t.Fatalf("jobs = %d, want %d", res.Jobs, want)
	}
	if want := int64(3 * org.Crossbars()); res.SIMDOps != want || res.Ops != want {
		t.Fatalf("simd = %d ops = %d, want %d", res.SIMDOps, res.Ops, want)
	}
	if res.CrossbarsTouched != org.Crossbars() {
		t.Fatalf("crossbars touched = %d, want %d", res.CrossbarsTouched, org.Crossbars())
	}
	if res.Machine.MEMCycles == 0 || res.Machine.CriticalOps == 0 {
		t.Fatalf("no machine activity recorded: %+v", res.Machine)
	}
	for b, tally := range res.PerBank {
		if tally.Jobs != int64(org.PerBank) {
			t.Fatalf("bank %d jobs = %d, want %d", b, tally.Jobs, org.PerBank)
		}
	}
}

func TestHotBankSkew(t *testing.T) {
	res, err := Run(testCfg(2), HotBank{Jobs: 120, Skew: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 120 {
		t.Fatalf("jobs = %d", res.Jobs)
	}
	// Zipf mass concentrates on bank 0; it must dominate every other bank.
	for b := 1; b < len(res.PerBank); b++ {
		if res.PerBank[0].Jobs <= res.PerBank[b].Jobs {
			t.Fatalf("bank 0 (%d jobs) not hotter than bank %d (%d jobs)",
				res.PerBank[0].Jobs, b, res.PerBank[b].Jobs)
		}
	}
}

func TestMixedScrubRunsBothKinds(t *testing.T) {
	res, err := Run(testCfg(2), MixedScrub{Rounds: 2, SIMDPerRound: 2})
	if err != nil {
		t.Fatal(err)
	}
	org := testOrg()
	if want := int64(2 * org.Crossbars()); res.Scrubs != want || res.Loads != want {
		t.Fatalf("scrubs = %d loads = %d, want %d", res.Scrubs, res.Loads, want)
	}
	if want := int64(4 * org.Crossbars()); res.SIMDOps != want {
		t.Fatalf("simd = %d, want %d", res.SIMDOps, want)
	}
	// Clean memory: the interleaved scrubs must find nothing.
	if res.Corrected != 0 || res.Uncorrectable != 0 {
		t.Fatalf("clean fleet flagged: corrected=%d unc=%d", res.Corrected, res.Uncorrectable)
	}
}

func TestFaultStormECCCorrects(t *testing.T) {
	res, err := Run(testCfg(4), FaultStorm{Bursts: 3, SER: 5e5, Hours: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 {
		t.Fatal("storm injected nothing — raise SER or hours")
	}
	if res.Corrected == 0 {
		t.Fatal("ECC corrected nothing under a fault storm")
	}
	if res.Machine.Corrections != int(res.Corrected) {
		t.Fatalf("result corrected=%d but machine stats say %d", res.Corrected, res.Machine.Corrections)
	}
}

func TestFaultStormBaselineNeverCorrects(t *testing.T) {
	cfg := testCfg(2)
	cfg.ECCEnabled = false
	cfg.M, cfg.K = 0, 0
	res, err := Run(cfg, FaultStorm{Bursts: 2, SER: 5e5, Hours: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 {
		t.Fatal("storm injected nothing")
	}
	if res.Corrected != 0 || res.Uncorrectable != 0 {
		t.Fatalf("baseline fleet reported ECC activity: %+v", res)
	}
}

func TestRunRejectsInvalidGeometry(t *testing.T) {
	cfg := testCfg(1)
	cfg.M = 14 // must be odd and divide N
	if _, err := Run(cfg, Uniform{}); err == nil {
		t.Fatal("invalid ECC geometry accepted")
	}
	cfg = testCfg(1)
	cfg.Org = mmpu.Custom(0, 1, 1)
	if _, err := Run(cfg, Uniform{}); err == nil {
		t.Fatal("zero-sided crossbar accepted")
	}
}

type rogueWorkload struct{}

func (rogueWorkload) Name() string { return "rogue" }
func (rogueWorkload) Plan(org mmpu.Organization, seed int64) []Job {
	return []Job{{Bank: org.Banks, Crossbar: 0, Ops: []Op{{Kind: OpSIMD}}}}
}

func TestRunRejectsOutOfRangeJob(t *testing.T) {
	if _, err := Run(testCfg(1), rogueWorkload{}); err == nil {
		t.Fatal("out-of-range job accepted")
	}
}

func TestScenarioByName(t *testing.T) {
	for _, name := range ScenarioNames() {
		w, err := ScenarioByName(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != name {
			t.Fatalf("%q resolved to %q", name, w.Name())
		}
		if jobs := w.Plan(testOrg(), 1); len(jobs) == 0 {
			t.Fatalf("%q plans no jobs", name)
		}
	}
	if _, err := ScenarioByName("nope", 0); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestResultMergeCommutativeAssociative(t *testing.T) {
	a := Result{Scenario: "s", Jobs: 1, SIMDOps: 2, PerBank: []BankTally{{Jobs: 1}}}
	b := Result{Scenario: "s", Jobs: 5, Corrected: 3, PerBank: []BankTally{{Jobs: 2}, {Injected: 7}}}
	c := Result{Scenario: "s", Ops: 9}
	ab := a.Merge(b)
	ba := b.Merge(a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge not commutative: %+v vs %+v", ab, ba)
	}
	if l, r := a.Merge(b).Merge(c), a.Merge(b.Merge(c)); !reflect.DeepEqual(l, r) {
		t.Fatalf("merge not associative: %+v vs %+v", l, r)
	}
}

func TestWorkloadPlanIsPure(t *testing.T) {
	org := testOrg()
	for _, w := range []Workload{
		Uniform{OpsPerCrossbar: 2}, HotBank{Jobs: 30}, MixedScrub{}, FaultStorm{},
	} {
		p1 := w.Plan(org, 7)
		p2 := w.Plan(org, 7)
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("%s: plan not reproducible", w.Name())
		}
	}
}

// TestCampaignDeterministicAcrossWorkers is the satellite extension of the
// worker-invariance contract to campaigns: with faults active, adjudicated
// campaign results (outcome counts, position histograms, reference checks)
// must merge identically for 1, 7, and 32 workers given the same base
// seed, across every fault model in the taxonomy.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	org := mmpu.Custom(45, 32, 1) // 32 banks so a 32-worker run is 32 real shards
	scenarios := []Workload{
		Campaign{Rounds: 2, Model: "transient", SER: 3e5},
		Campaign{Rounds: 2, Model: "stuck1", SER: 2e5},
		Campaign{Rounds: 2, Model: "lines", SER: 1e4, Skew: 2},
	}
	for _, w := range scenarios {
		w := w.(Campaign)
		t.Run(w.Model, func(t *testing.T) {
			cfg := Config{Org: org, M: 15, K: 2, ECCEnabled: true, Seed: 77, Workers: 1}
			ref, err := Run(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			if ref.CampaignRounds != int64(2*org.Crossbars()) {
				t.Fatalf("campaign rounds = %d, want %d", ref.CampaignRounds, 2*org.Crossbars())
			}
			if ref.Campaign.Rounds != ref.CampaignRounds {
				t.Fatalf("tally rounds %d != result rounds %d", ref.Campaign.Rounds, ref.CampaignRounds)
			}
			for _, workers := range []int{7, 32} {
				cfg.Workers = workers
				got, err := Run(cfg, w)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", workers, ref, workers, got)
				}
			}
		})
	}
}

// TestRepairCampaignDeterministicAcrossWorkers: with the self-healing
// policy active — write-verify retirements mutating per-machine repair
// state mid-round — the fleet result must still be identical at every
// worker count, and the stuck campaign that silently corrupts with repair
// off must come back silent-free.
func TestRepairCampaignDeterministicAcrossWorkers(t *testing.T) {
	org := mmpu.Custom(45, 32, 1) // 32 banks so a 32-worker run is 32 real shards
	w := Campaign{Rounds: 6, Model: "stuck1", SER: 2e5}
	cfg := Config{
		Org: org, M: 15, K: 2, ECCEnabled: true, Seed: 77, Workers: 1,
		Repair: repair.Config{Policy: repair.VerifySpare, Spares: 8},
	}
	ref, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := ref.Campaign.Counts[campaign.SilentCorruption]; got != 0 {
		t.Fatalf("silent corruptions = %d with verify+spare, want 0", got)
	}
	if got := ref.Campaign.Counts[campaign.Miscorrected]; got != 0 {
		t.Fatalf("miscorrections = %d with verify+spare, want 0", got)
	}
	if ref.Campaign.CellsRetired == 0 {
		t.Fatal("fleet campaign never exercised retirement (raise rounds or rate?)")
	}
	for _, workers := range []int{8, 32} {
		cfg.Workers = workers
		got, err := Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", workers, ref, workers, got)
		}
	}
}

// TestCampaignScenarioConformance: the fleet-wide transient campaign at a
// single-error-per-block rate upholds the paper's guarantee on every
// crossbar of the mMPU.
func TestCampaignScenarioConformance(t *testing.T) {
	res, err := Run(testCfg(3), Campaign{Rounds: 20, Model: "transient", SER: 3e5})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Campaign
	if tl.Injected == 0 {
		t.Fatal("fleet campaign injected nothing — raise SER")
	}
	if !tl.Conformant() {
		t.Fatalf("fleet campaign violated the ECC guarantee: %+v", tl)
	}
	if tl.RefChecks == 0 {
		t.Fatal("no bit-serial reference checks ran")
	}
	if res.Injected != tl.Injected || res.Corrected != tl.Counts[0] {
		t.Fatalf("result counters diverged from tally: %+v vs %+v", res, tl)
	}
	// Campaign machines contribute their hardware statistics.
	if res.Machine.MEMCycles == 0 || res.Machine.Corrections == 0 {
		t.Fatalf("no campaign machine activity recorded: %+v", res.Machine)
	}
}

// TestCampaignSkewSpreadsExposure: with a strong skew exponent, some
// crossbars see materially more exposure than others — visible as
// per-bank injection imbalance under a one-crossbar-per-bank layout.
func TestCampaignSkewSpreadsExposure(t *testing.T) {
	org := mmpu.Custom(45, 16, 1)
	cfg := Config{Org: org, M: 15, K: 2, ECCEnabled: true, Seed: 5, Workers: 4}
	res, err := Run(cfg, Campaign{Rounds: 30, Model: "transient", SER: 1e6, Skew: 3})
	if err != nil {
		t.Fatal(err)
	}
	min, max := res.PerBank[0].Injected, res.PerBank[0].Injected
	for _, b := range res.PerBank {
		if b.Injected < min {
			min = b.Injected
		}
		if b.Injected > max {
			max = b.Injected
		}
	}
	if max < 2*min+2 {
		t.Fatalf("skew produced no spread: min %d max %d", min, max)
	}
}

// TestRunRejectsUnknownCampaignModel: bad model specs are caught up front
// as errors, not mid-run panics in a shard.
func TestRunRejectsUnknownCampaignModel(t *testing.T) {
	if _, err := Run(testCfg(1), Campaign{Model: "gamma-ray"}); err == nil {
		t.Fatal("unknown fault model accepted")
	}
}

type twoSpecWorkload struct{}

func (twoSpecWorkload) Name() string { return "twospec" }
func (twoSpecWorkload) Plan(org mmpu.Organization, seed int64) []Job {
	return []Job{{Bank: 0, Crossbar: 0, Ops: []Op{
		{Kind: OpCampaign, Model: "transient", SER: 1e5, Hours: 1},
		{Kind: OpCampaign, Model: "stuck1", SER: 1e7, Hours: 1},
	}}}
}

// TestRunRejectsHeterogeneousCampaignSpec: a crossbar's campaign runner is
// seeded once, so a plan that changes its model or rate mid-run is an
// error, not a silently ignored spec.
func TestRunRejectsHeterogeneousCampaignSpec(t *testing.T) {
	if _, err := Run(testCfg(1), twoSpecWorkload{}); err == nil {
		t.Fatal("mid-run campaign spec change accepted")
	}
}
