// Package repro's benchmark harness: one testing.B benchmark per table
// and figure of the paper, plus micro-benchmarks for the mechanisms those
// results rest on. Run with:
//
//	go test -bench=. -benchmem
//
// The per-experiment mapping is documented in DESIGN.md and the measured
// outputs are recorded in EXPERIMENTS.md.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/area"
	"repro/internal/bitmat"
	"repro/internal/circuits"
	"repro/internal/cmem"
	"repro/internal/ecc"
	"repro/internal/eccsched"
	"repro/internal/fleet"
	"repro/internal/machine"
	"repro/internal/reliability"
	"repro/internal/shifter"
	"repro/internal/synth"
	"repro/internal/xbar"
)

// --- E1: Figure 6 — MTTF sensitivity analysis --------------------------------

// BenchmarkFig6MTTF regenerates the full Figure 6 sweep (both curves,
// 10⁻⁵…10³ FIT/bit) each iteration.
func BenchmarkFig6MTTF(b *testing.B) {
	model := reliability.PaperModel()
	for i := 0; i < b.N; i++ {
		pts := model.Fig6Sweep(4)
		if pts[0].Improvement < 1 {
			b.Fatal("model broke")
		}
	}
}

// BenchmarkFig6MonteCarlo times the Monte Carlo validation backing the
// analytic curves.
func BenchmarkFig6MonteCarlo(b *testing.B) {
	geom := ecc.Params{N: 45, M: 15}
	for i := 0; i < b.N; i++ {
		reliability.MonteCarloCrossbarFailure(geom, 1e-3, true, 200, int64(i))
	}
}

// --- E2: Table I — latency per benchmark --------------------------------------

// BenchmarkTable1Latency regenerates each Table I row: full flow from
// circuit generation through NOR lowering, SIMPLER mapping and the
// ECC-extended greedy schedule.
func BenchmarkTable1Latency(b *testing.B) {
	cfg := eccsched.DefaultTable1Config()
	for _, bm := range circuits.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := eccsched.RunBenchmark(bm, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if r.Proposed <= r.Baseline {
					b.Fatal("no overhead measured")
				}
			}
		})
	}
}

// --- E3: Table II — area ------------------------------------------------------

// BenchmarkTable2Area regenerates the device-count table.
func BenchmarkTable2Area(b *testing.B) {
	cfg := area.PaperConfig()
	for i := 0; i < b.N; i++ {
		t := cfg.Table()
		if t[len(t)-1].Memristors == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- E4/E6: mechanism micro-benchmarks ---------------------------------------

// BenchmarkMAGICNORRowParallel measures one full-width row-parallel NOR
// on a paper-sized crossbar (1020 gates in one cycle).
func BenchmarkMAGICNORRowParallel(b *testing.B) {
	x := xbar.New(1020, 1020)
	rng := rand.New(rand.NewSource(1))
	x.Mat().Randomize(rng)
	rows := x.AllRows()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.InitColumnsInRows([]int{3}, rows)
		x.NORRows(1, 2, 3, rows)
	}
}

// BenchmarkXOR3Pipeline measures the 8-NOR MAGIC XOR3 across a full
// 1020-wide processing-crossbar strip.
func BenchmarkXOR3Pipeline(b *testing.B) {
	x := xbar.New(xbar.XOR3WorkRows, 1020)
	rng := rand.New(rand.NewSource(2))
	x.Mat().Randomize(rng)
	cols := x.AllCols()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.XOR3Cols(0, cols)
	}
}

// BenchmarkCriticalUpdate measures the complete critical-operation
// protocol on a paper-sized CMEM: route old/new data through the
// shifters, XOR3 both diagonal families, write back.
func BenchmarkCriticalUpdate(b *testing.B) {
	cfg := cmem.PaperConfig()
	c := cmem.New(cfg)
	mem := xbar.New(cfg.N, cfg.N)
	rng := rand.New(rand.NewSource(3))
	mem.Mat().Randomize(rng)
	c.LoadFrom(mem.Mat())
	oldCol := mem.Mat().Col(7)
	newCol := oldCol.Clone()
	newCol.Flip(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.UpdateCritical(0, cmem.CriticalUpdate{
			Orientation: shifter.RowParallel, Index: 7, Old: oldCol, New: newCol,
		})
		oldCol, newCol = newCol, oldCol
	}
}

// BenchmarkCheckLine measures one block-line ECC check (copy m lines,
// XOR3 tree, syndrome compare, decode) on the paper-sized CMEM.
func BenchmarkCheckLine(b *testing.B) {
	cfg := cmem.PaperConfig()
	c := cmem.New(cfg)
	mem := xbar.New(cfg.N, cfg.N)
	rng := rand.New(rand.NewSource(4))
	mem.Mat().Randomize(rng)
	c.LoadFrom(mem.Mat())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := c.CheckLine(mem, shifter.ColParallel, i%(cfg.N/cfg.M), 0); len(d) != 0 {
			b.Fatal("unexpected diagnosis on clean memory")
		}
	}
}

// BenchmarkSyndromeDecode measures the pure decode path (syndrome →
// located error) on a single block.
func BenchmarkSyndromeDecode(b *testing.B) {
	p := ecc.Params{N: 15, M: 15}
	mem := bitmat.NewMat(15, 15)
	rng := rand.New(rand.NewSource(5))
	mem.Randomize(rng)
	cb := ecc.Build(p, mem)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mem.Flip(i%15, (i*7)%15)
		if d := cb.CorrectBlock(mem, 0, 0); d.Kind != ecc.DataError {
			b.Fatalf("decode failed: %v", d.Kind)
		}
	}
}

// BenchmarkScrub1020 measures a full-crossbar periodic scrub at paper size.
func BenchmarkScrub1020(b *testing.B) {
	p := ecc.PaperParams()
	mem := bitmat.NewMat(p.N, p.N)
	rng := rand.New(rand.NewSource(6))
	mem.Randomize(rng)
	cb := ecc.Build(p, mem)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := cb.Scrub(mem)
		if rep.Uncorrectable != 0 {
			b.Fatal("clean memory flagged")
		}
	}
}

// BenchmarkShifterRoute measures the barrel-shifter routing of a full
// 1020-bit line into diagonal order.
func BenchmarkShifterRoute(b *testing.B) {
	s := shifter.New(1020, 15)
	rng := rand.New(rand.NewSource(7))
	v := bitmat.NewVec(1020)
	for i := 0; i < 1020; i++ {
		v.Set(i, rng.Intn(2) == 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Route(v, i%15, shifter.Leading, shifter.RowParallel)
	}
}

// BenchmarkSIMPLERMapAdder measures SIMPLER mapping of the 128-bit adder
// into a 1020-cell row.
func BenchmarkSIMPLERMapAdder(b *testing.B) {
	nor := circuits.BuildAdder().LowerToNOR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Map(nor, 1020); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSIMDExecuteProtected measures end-to-end SIMD execution of an
// 8-bit adder across 45 rows with continuous ECC maintenance.
func BenchmarkSIMDExecuteProtected(b *testing.B) {
	mp := benchAdderMapping(b)
	for i := 0; i < b.N; i++ {
		m := machine.MustNew(machine.Config{N: 45, M: 15, K: 2, ECCEnabled: true})
		if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSIMDExecuteBaseline is the unprotected control of the above.
func BenchmarkSIMDExecuteBaseline(b *testing.B) {
	mp := benchAdderMapping(b)
	for i := 0; i < b.N; i++ {
		m := machine.MustNew(machine.Config{N: 45, ECCEnabled: false})
		if err := m.ExecuteSIMD(mp, m.MEM().AllRows()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchAdderMapping(b *testing.B) *synth.Mapping {
	b.Helper()
	// An 8-bit adder fits the 45-cell benchmarking row — the same kernel
	// the fleet engine (E7) executes, so E6 and E7 measure like for like.
	mp, err := fleet.AdderKernel(8, 45)
	if err != nil {
		b.Fatal(err)
	}
	return mp
}

// --- E5: update-cost comparison (Fig 2) ---------------------------------------

// BenchmarkDiagonalTouchMeasure measures the per-op touch-profile
// computation used to prove the Θ(1) update property.
func BenchmarkDiagonalTouchMeasure(b *testing.B) {
	p := ecc.PaperParams()
	cells := make([][2]int, p.N)
	for r := 0; r < p.N; r++ {
		cells[r] = [2]int{r, 7}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if prof := ecc.MeasureDiagonalTouch(p, cells); prof.MaxPerCheck != 1 {
			b.Fatal("Θ(1) property violated")
		}
	}
}
