// Command fleetbench drives the concurrent fleet engine (internal/fleet):
// it instantiates a multi-bank mMPU organization of protected crossbars,
// streams a chosen workload scenario across it with a per-bank worker
// pool, and reports aggregate throughput plus ECC activity.
//
// Examples:
//
//	fleetbench -scenario uniform -banks 8 -perbank 4 -workers 4
//	fleetbench -scenario hotbank -intensity 256
//	fleetbench -scenario faultstorm -duration 3s -ecc=true
//	fleetbench -scenario faultstorm -ser 2e5 -hours 2 -seed 7   # reproducible storm
//	fleetbench -scenario campaign -model stuck1 -ser 1e5
//	fleetbench -scenario campaign -ecc hamming     # Hamming SEC-DED backend
//	fleetbench -scenario uniform -ecc=false        # unprotected baseline
//	fleetbench -scenario campaign -model stuck1 -repair verify+spare
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/cliflags"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/mmpu"
)

func main() {
	var geo cliflags.Geometry
	var eccSel cliflags.ECC
	var tel cliflags.Telemetry
	var repairSel cliflags.Repair
	var workers int
	var seed int64
	cliflags.RegisterGeometry(flag.CommandLine, &geo,
		cliflags.Geometry{N: 45, M: 15, K: 2, Banks: 8, PerBank: 4})
	cliflags.RegisterECC(flag.CommandLine, &eccSel)
	cliflags.RegisterRepair(flag.CommandLine, &repairSel)
	scenario := flag.String("scenario", "uniform",
		"workload scenario: "+strings.Join(fleet.ScenarioNames(), ", "))
	intensity := flag.Int("intensity", 0,
		"scenario intensity (uniform: ops/crossbar, hotbank: total jobs, mixedscrub: rounds/crossbar, faultstorm: bursts/crossbar, campaign: rounds/crossbar; 0 = default)")
	cliflags.RegisterWorkers(flag.CommandLine, &workers, "worker shards (0 = GOMAXPROCS, capped at banks)")
	cliflags.RegisterSeed(flag.CommandLine, &seed, "campaign base seed (runs replay exactly from this)")
	ser := flag.Float64("ser", 0,
		"faultstorm/campaign injection rate [FIT/bit; FIT/line for the lines model] (0 = scenario default)")
	hours := flag.Float64("hours", 0, "faultstorm/campaign exposure per burst/round (0 = scenario default)")
	model := flag.String("model", "",
		"campaign fault model: "+strings.Join(faults.ModelNames(), ", ")+" (default transient)")
	skew := flag.Float64("skew", 0, "campaign per-crossbar rate-skew exponent")
	width := flag.Int("width", 8, "SIMD kernel: adder width")
	duration := flag.Duration("duration", 0,
		"keep re-running (fresh derived seed each pass) until this much time has elapsed; 0 = one pass")
	cliflags.RegisterTelemetry(flag.CommandLine, &tel)
	flag.Parse()

	w, err := fleet.ScenarioWithOptions(*scenario, fleet.ScenarioOptions{
		Intensity: *intensity, SER: *ser, Hours: *hours, Model: *model, Skew: *skew,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	eccSel.Resolve()
	repairSel.Resolve()
	scheme, eccOn := eccSel.Scheme, eccSel.Enabled
	repairOn := repairSel.Config.Enabled()
	n, banks, perBank := &geo.N, &geo.Banks, &geo.PerBank
	stop, err := tel.Serve()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stop()
	cfg := fleet.Config{
		Org: mmpu.Custom(geo.N, geo.Banks, geo.PerBank), M: geo.M, K: geo.K, ECCEnabled: eccOn, Scheme: scheme,
		Repair:  repairSel.Config,
		Workers: workers, Seed: seed, KernelWidth: *width, Telemetry: tel.Registry(),
	}

	var total fleet.Result
	passes := 0
	start := time.Now()
	for {
		cfg.Seed = seed + int64(passes) // each pass replays a fresh deterministic campaign
		res, err := fleet.Run(cfg, w)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		total = total.Merge(res)
		passes++
		if time.Since(start) >= *duration {
			break
		}
	}
	elapsed := time.Since(start)

	eccDesc := "off"
	if eccOn {
		eccDesc = scheme
	}
	fmt.Printf("fleet: %d banks × %d crossbars of %d×%d (ECC %s), %d workers\n",
		*banks, *perBank, *n, *n, eccDesc, cfg.EffectiveWorkers())
	fmt.Printf("scenario %-11s %d pass(es) in %v\n\n", total.Scenario, passes, elapsed.Round(time.Millisecond))
	fmt.Printf("  jobs %-10d ops %-10d crossbars touched %d/pass\n",
		total.Jobs, total.Ops, total.CrossbarsTouched/passes)
	fmt.Printf("  simd %-10d scrubs %-8d loads %-8d bursts %d\n",
		total.SIMDOps, total.Scrubs, total.Loads, total.FaultBursts)
	fmt.Printf("  injected %-6d corrected %-5d uncorrectable %d\n",
		total.Injected, total.Corrected, total.Uncorrectable)
	fmt.Printf("  MEM cycles %-12d critical ops %-8d input checks %d\n",
		total.Machine.MEMCycles, total.Machine.CriticalOps, total.Machine.InputChecks)
	fmt.Printf("  throughput: %.1f jobs/s, %.1f ops/s\n\n",
		float64(total.Jobs)/elapsed.Seconds(), float64(total.Ops)/elapsed.Seconds())

	fmt.Println("  per-bank traffic:")
	for b, t := range total.PerBank {
		bar := strings.Repeat("#", int(64*t.Jobs/max(total.Jobs, 1)))
		fmt.Printf("    bank %2d %6d jobs %s\n", b, t.Jobs, bar)
	}

	if total.CampaignRounds > 0 {
		tl := total.Campaign
		fmt.Printf("\n  campaign adjudication (%d rounds, %d faults):\n", tl.Rounds, tl.Injected)
		for o := 0; o < campaign.NumOutcomes; o++ {
			if o == int(campaign.Repaired) && !repairOn {
				// The repaired outcome exists only with a repair policy;
				// keep the default output byte-identical to pre-repair runs.
				continue
			}
			fmt.Printf("    %-22s %d\n", campaign.Outcome(o).String(), tl.Counts[o])
		}
		fmt.Printf("    ref checks %d (mismatches %d) — conformant: %v\n",
			tl.RefChecks, tl.RefMismatches, tl.Conformant())
		if repairOn {
			fmt.Printf("    repair %s (spares %d): %d verify mismatches, %d retired, %d exhausted\n",
				repairSel.Config.Policy, repairSel.Config.SpareBudget(),
				tl.VerifyMismatches, tl.CellsRetired, tl.SparesExhausted)
		}
	}

	if tel.Snapshot {
		// The snapshot appends after the text report as indented JSON —
		// deterministic at a fixed seed and worker-count-invariant, like
		// the Result it mirrors.
		fmt.Println("\n  telemetry snapshot:")
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("  ", "  ")
		if err := enc.Encode(tel.Registry().Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	tel.Wait()
}
