package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write marshals a snapshot into dir and returns its path.
func write(t *testing.T, dir, name string, s snapshot) string {
	t.Helper()
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// base is a plausible snapshot with gated and ungated benchmarks.
func base() snapshot {
	return snapshot{
		Date: "2026-08-01", CPU: "TestCPU @ 2.70GHz", BenchTime: "50ms",
		Results: []result{
			{Name: "BenchmarkFleetScenarios/uniform", Pkg: "repro/internal/serve", NsPerOp: 1000},
			{Name: "BenchmarkXbarGates/NORCols", Pkg: "repro/internal/xbar", NsPerOp: 200},
			{Name: "BenchmarkSchemeScrub/scheme=diagonal", Pkg: "repro/internal/ecc", NsPerOp: 5000},
			{Name: "BenchmarkAblationRefresh", Pkg: "repro", NsPerOp: 300},
		},
	}
}

func runDiff(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestIdenticalSnapshotsPass(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", base())
	cur := write(t, dir, "new.json", base())
	code, stdout, stderr := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit %d on identical snapshots; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "no gated benchmark regressed") {
		t.Fatalf("missing ok line:\n%s", stdout)
	}
}

func TestGatedRegressionFails(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", base())
	s := base()
	s.Results[2].NsPerOp = 5600 // SchemeScrub +12%: past the 10% gate
	cur := write(t, dir, "new.json", s)
	code, stdout, stderr := runDiff(t, old, cur)
	if code != 1 {
		t.Fatalf("exit %d, want 1 for a 12%% gated regression; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "BenchmarkSchemeScrub/scheme=diagonal") {
		t.Fatalf("failing benchmark not named:\n%s", stderr)
	}
	if !strings.Contains(stdout, "FAIL") {
		t.Fatalf("delta table does not flag the failure:\n%s", stdout)
	}
}

func TestRegressionWithinThresholdPasses(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", base())
	s := base()
	s.Results[0].NsPerOp = 1090 // +9%: under the gate
	cur := write(t, dir, "new.json", s)
	if code, _, stderr := runDiff(t, old, cur); code != 0 {
		t.Fatalf("exit %d on a 9%% drift; stderr: %s", code, stderr)
	}
}

func TestUngatedRegressionPasses(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", base())
	s := base()
	s.Results[3].NsPerOp = 900 // AblationRefresh 3x slower, but not gated
	cur := write(t, dir, "new.json", s)
	if code, _, stderr := runDiff(t, old, cur); code != 0 {
		t.Fatalf("exit %d on an ungated regression; stderr: %s", code, stderr)
	}
}

func TestImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", base())
	s := base()
	for i := range s.Results {
		s.Results[i].NsPerOp *= 0.5
	}
	cur := write(t, dir, "new.json", s)
	if code, _, stderr := runDiff(t, old, cur); code != 0 {
		t.Fatalf("exit %d when everything got faster; stderr: %s", code, stderr)
	}
}

func TestCrossHostRefusedWithoutForce(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", base())
	s := base()
	s.CPU = "OtherCPU @ 3.00GHz"
	cur := write(t, dir, "new.json", s)

	code, _, stderr := runDiff(t, old, cur)
	if code != 2 {
		t.Fatalf("exit %d, want 2 for cross-host snapshots; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "different hosts") {
		t.Fatalf("refusal not explained:\n%s", stderr)
	}

	// -force downgrades the refusal to a warning and compares anyway.
	code, _, stderr = runDiff(t, "-force", old, cur)
	if code != 0 {
		t.Fatalf("exit %d with -force; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "warning") {
		t.Fatalf("forced comparison should warn:\n%s", stderr)
	}
}

func TestNewAndGoneBenchmarksNeverGate(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", base())
	s := base()
	// Drop a gated benchmark and add a new one: reported, never gating.
	s.Results = append(s.Results[:1], result{
		Name: "BenchmarkFleetBrandNew", Pkg: "repro/internal/serve", NsPerOp: 1e9,
	})
	cur := write(t, dir, "new.json", s)
	code, stdout, stderr := runDiff(t, old, cur)
	if code != 0 {
		t.Fatalf("exit %d when benchmarks appear/disappear; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "new") || !strings.Contains(stdout, "gone") {
		t.Fatalf("appear/disappear rows missing:\n%s", stdout)
	}
}

func TestSameNameDifferentPackageDoesNotJoin(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", base())
	s := base()
	s.Results[1].Pkg = "repro/internal/elsewhere"
	s.Results[1].NsPerOp = 20000 // 100x, but in another package: no baseline
	cur := write(t, dir, "new.json", s)
	if code, _, stderr := runDiff(t, old, cur); code != 0 {
		t.Fatalf("exit %d for a cross-package name collision; stderr: %s", code, stderr)
	}
}

// calibrated is base() plus the host-calibration benchmark.
func calibrated() snapshot {
	s := base()
	s.Results = append(s.Results, result{
		Name: "BenchmarkHostCalibration", Pkg: "repro", NsPerOp: 4000,
	})
	return s
}

func TestNormalizeCancelsUniformHostSlowdown(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", calibrated())
	s := calibrated()
	for i := range s.Results {
		s.Results[i].NsPerOp *= 1.4 // the whole host ran 40% slower
	}
	cur := write(t, dir, "new.json", s)

	// Unnormalized, every gated benchmark looks 40% regressed.
	if code, _, _ := runDiff(t, old, cur); code != 1 {
		t.Fatal("uniform slowdown should fail the unnormalized gate")
	}
	code, _, stderr := runDiff(t, "-normalize", "BenchmarkHostCalibration", old, cur)
	if code != 0 {
		t.Fatalf("exit %d: normalization did not cancel the slowdown; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "scaled x0.714") {
		t.Fatalf("scale factor not reported:\n%s", stderr)
	}
}

func TestNormalizeKeepsRealRegressionVisible(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", calibrated())
	s := calibrated()
	for i := range s.Results {
		s.Results[i].NsPerOp *= 1.4
	}
	s.Results[2].NsPerOp *= 1.25 // SchemeScrub regressed 25% on top of it
	cur := write(t, dir, "new.json", s)
	code, _, stderr := runDiff(t, "-normalize", "BenchmarkHostCalibration", old, cur)
	if code != 1 {
		t.Fatalf("exit %d: a real regression survived normalization; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "BenchmarkSchemeScrub/scheme=diagonal") {
		t.Fatalf("regressed benchmark not named:\n%s", stderr)
	}
}

func TestNormalizeMissingCalibrationRefused(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", base()) // no calibration benchmark
	cur := write(t, dir, "new.json", base())
	code, _, stderr := runDiff(t, "-normalize", "BenchmarkHostCalibration", old, cur)
	if code != 2 {
		t.Fatalf("exit %d, want 2 when the calibration benchmark is missing; stderr: %s", code, stderr)
	}
}

func TestMultipleNewSnapshotsGateOnFastest(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", base())
	slow := base()
	for i := range slow.Results {
		slow.Results[i].NsPerOp *= 1.3 // one measurement hit contention
	}
	a := write(t, dir, "a.json", slow)
	b := write(t, dir, "b.json", base()) // the re-measurement is clean

	// Alone, the noisy measurement fails; paired with a clean one, each
	// benchmark's fastest sample wins and the gate passes.
	if code, _, _ := runDiff(t, old, a); code != 1 {
		t.Fatal("noisy measurement alone should fail")
	}
	if code, _, stderr := runDiff(t, old, a, b); code != 0 {
		t.Fatalf("fastest-of-two still fails; stderr: %s", stderr)
	}

	// A regression present in every measurement is code, not noise.
	reg := base()
	reg.Results[0].NsPerOp *= 1.2
	reg2 := base()
	reg2.Results[0].NsPerOp *= 1.25
	c := write(t, dir, "c.json", reg)
	d := write(t, dir, "d.json", reg2)
	code, _, stderr := runDiff(t, old, c, d)
	if code != 1 {
		t.Fatalf("exit %d: persistent regression escaped the fastest-of-two gate; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "BenchmarkFleetScenarios/uniform") {
		t.Fatalf("regressed benchmark not named:\n%s", stderr)
	}
}

func TestUsageAndBadInput(t *testing.T) {
	if code, _, _ := runDiff(t); code != 2 {
		t.Fatal("missing args must exit 2")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := write(t, dir, "good.json", base())
	if code, _, _ := runDiff(t, bad, good); code != 1 {
		t.Fatal("unreadable old snapshot must exit 1")
	}
	empty := write(t, dir, "empty.json", snapshot{Date: "x"})
	if code, _, _ := runDiff(t, good, empty); code != 1 {
		t.Fatal("empty snapshot must exit 1")
	}
}

func TestRealSnapshotAgainstItself(t *testing.T) {
	// The repo's own checked-in snapshots must parse and self-compare.
	path := "../../BENCH_2026-08-07.json"
	if _, err := os.Stat(path); err != nil {
		t.Skip("snapshot not present")
	}
	if code, _, stderr := runDiff(t, path, path); code != 0 {
		t.Fatalf("exit %d comparing a real snapshot to itself; stderr: %s", code, stderr)
	}
}
