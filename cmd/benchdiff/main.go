// Command benchdiff compares two benchjson perf snapshots and gates on
// regressions: it prints a per-benchmark delta table (ns/op, B/op,
// allocs/op) and exits nonzero when any gated benchmark — by default the
// fleet E7, crossbar-gate, and protection-scheme suites — slowed down by
// more than the threshold. It is the repo's perf-regression tripwire:
//
//	go run ./cmd/benchdiff BENCH_old.json BENCH_new.json
//
// Snapshots taken on different CPUs are not comparable; benchdiff
// refuses them (exit 2) unless -force acknowledges the apples-to-
// oranges risk. Benchmarks present in only one snapshot are reported
// but never gate — a new benchmark has no baseline to regress from.
//
// On hosts whose speed drifts between runs (shared VMs, throttling CI
// runners), -normalize NAME rescales the new snapshot by the ratio the
// named calibration benchmark moved: a code-independent workload like
// BenchmarkHostCalibration slows down exactly as much as the host did,
// so uniform host slowdowns cancel and only code-caused deltas remain.
// Passing more than one NEW snapshot gates on each benchmark's fastest
// sample across them (normalized per snapshot) — transient contention
// rarely hits the same benchmark in every independent measurement, so a
// delta that survives the minimum is code, not noise.
//
// Exit codes: 0 clean, 1 regression past threshold (or unreadable
// input), 2 cross-host refusal / usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// result mirrors the benchjson per-benchmark record; unknown fields in
// the snapshot are ignored so the two tools can evolve independently.
type result struct {
	Name       string  `json:"name"`
	Pkg        string  `json:"pkg"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op"`
	AllocsOp   float64 `json:"allocs_per_op"`
}

// snapshot mirrors the benchjson file schema.
type snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	CPU       string   `json:"cpu"`
	BenchTime string   `json:"benchtime"`
	Results   []result `json:"results"`
}

// row is one line of the delta table.
type row struct {
	name     string
	old, new float64 // ns/op
	delta    float64 // percent, +slower
	gated    bool
	only     string // "old" or "new" when present in one snapshot
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 10, "ns/op regression percentage that fails gated benchmarks")
	gate := fs.String("gate", `^Benchmark(Fleet|XbarGates|Scheme)`, "regex selecting the benchmarks that gate")
	force := fs.Bool("force", false, "compare snapshots even when their cpu fields differ")
	normalize := fs.String("normalize", "", "calibration benchmark name; rescales the new snapshot by its old/new ratio to cancel host speed drift")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [flags] OLD.json NEW.json [NEW2.json ...]")
		return 2
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: bad -gate: %v\n", err)
		return 2
	}

	old, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 1
	}
	var news []snapshot
	for _, arg := range fs.Args()[1:] {
		s, err := load(arg)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 1
		}
		news = append(news, s)
	}

	// ns/op measured on different silicon is noise, not signal. A
	// snapshot without a cpu field (parse miss) is treated as unknown
	// and only comparable to another unknown.
	for _, s := range news {
		if old.CPU != s.CPU {
			if !*force {
				fmt.Fprintf(stderr, "benchdiff: snapshots are from different hosts (cpu %q vs %q); pass -force to compare anyway\n",
					old.CPU, s.CPU)
				return 2
			}
			fmt.Fprintf(stderr, "benchdiff: warning: comparing across hosts (cpu %q vs %q)\n", old.CPU, s.CPU)
		}
	}

	if *normalize != "" {
		for i := range news {
			scale, err := calibrate(old, news[i], *normalize)
			if err != nil {
				fmt.Fprintf(stderr, "benchdiff: %v\n", err)
				return 2
			}
			fmt.Fprintf(stderr, "benchdiff: normalizing by %s: new snapshot %d scaled x%.3f\n", *normalize, i+1, scale)
			for j := range news[i].Results {
				news[i].Results[j].NsPerOp *= scale
			}
		}
	}
	cur := best(news)

	rows, failed := diff(old, cur, gateRe, *threshold)
	print(stdout, old, cur, rows, *threshold)
	if len(failed) > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d gated benchmark(s) regressed more than %.0f%%:\n", len(failed), *threshold)
		for _, r := range failed {
			fmt.Fprintf(stderr, "  %-52s %10.1f -> %10.1f ns/op  (%+.1f%%)\n", r.name, r.old, r.new, r.delta)
		}
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: ok, no gated benchmark regressed more than %.0f%%\n", *threshold)
	return 0
}

// load reads a benchjson snapshot.
func load(path string) (snapshot, error) {
	var s snapshot
	raw, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		return s, fmt.Errorf("%s: %v", path, err)
	}
	if len(s.Results) == 0 {
		return s, fmt.Errorf("%s: no benchmark results", path)
	}
	return s, nil
}

// best folds repeated measurements into one snapshot holding each
// benchmark's fastest ns/op: the minimum across independent runs is the
// estimator least contaminated by transient host contention. Metadata
// comes from the first measurement; a benchmark counts as present if
// any run measured it.
func best(news []snapshot) snapshot {
	cur := news[0]
	if len(news) == 1 {
		return cur
	}
	at := make(map[string]int, len(cur.Results))
	for i, r := range cur.Results {
		at[key(r)] = i
	}
	for _, s := range news[1:] {
		for _, r := range s.Results {
			if i, ok := at[key(r)]; ok {
				if r.NsPerOp < cur.Results[i].NsPerOp {
					cur.Results[i] = r
				}
				continue
			}
			at[key(r)] = len(cur.Results)
			cur.Results = append(cur.Results, r)
		}
	}
	return cur
}

// calibrate returns the old/new ns/op ratio of the named calibration
// benchmark. Scaling every new measurement by it maps "the host ran 40%
// slower this run" to a ratio near 1 after normalization.
func calibrate(old, cur snapshot, name string) (float64, error) {
	find := func(s snapshot, which string) (float64, error) {
		for _, r := range s.Results {
			if r.Name == name {
				if r.NsPerOp <= 0 {
					return 0, fmt.Errorf("calibration benchmark %s has no ns/op in the %s snapshot", name, which)
				}
				return r.NsPerOp, nil
			}
		}
		return 0, fmt.Errorf("calibration benchmark %s missing from the %s snapshot", name, which)
	}
	o, err := find(old, "old")
	if err != nil {
		return 0, err
	}
	n, err := find(cur, "new")
	if err != nil {
		return 0, err
	}
	return o / n, nil
}

// key joins package and name: the same benchmark name may exist in two
// packages, and a rename must not silently match across packages.
func key(r result) string {
	return r.Pkg + "." + r.Name
}

// diff joins the two snapshots by benchmark and computes ns/op deltas;
// failed holds the gated rows past the threshold.
func diff(old, cur snapshot, gate *regexp.Regexp, threshold float64) (rows, failed []row) {
	prev := make(map[string]result, len(old.Results))
	for _, r := range old.Results {
		prev[key(r)] = r
	}
	seen := make(map[string]bool, len(cur.Results))
	for _, r := range cur.Results {
		seen[key(r)] = true
		o, ok := prev[key(r)]
		if !ok {
			rows = append(rows, row{name: r.Name, new: r.NsPerOp, only: "new"})
			continue
		}
		d := row{name: r.Name, old: o.NsPerOp, new: r.NsPerOp, gated: gate.MatchString(r.Name)}
		if o.NsPerOp > 0 {
			d.delta = (r.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		if d.gated && d.delta > threshold {
			failed = append(failed, d)
		}
		rows = append(rows, d)
	}
	for _, r := range old.Results {
		if !seen[key(r)] {
			rows = append(rows, row{name: r.Name, old: r.NsPerOp, only: "old"})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows, failed
}

// print renders the delta table.
func print(w io.Writer, old, cur snapshot, rows []row, threshold float64) {
	fmt.Fprintf(w, "benchdiff: %s (%s) vs %s (%s), gate threshold %.0f%% ns/op\n",
		old.Date, old.BenchTime, cur.Date, cur.BenchTime, threshold)
	fmt.Fprintf(w, "%-52s %12s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, r := range rows {
		switch r.only {
		case "new":
			fmt.Fprintf(w, "%-52s %12s %12.1f %9s\n", r.name, "-", r.new, "new")
		case "old":
			fmt.Fprintf(w, "%-52s %12.1f %12s %9s\n", r.name, r.old, "-", "gone")
		default:
			mark := ""
			if r.gated && r.delta > threshold {
				mark = "  FAIL"
			} else if r.gated {
				mark = "  gate"
			}
			fmt.Fprintf(w, "%-52s %12.1f %12.1f %+8.1f%%%s\n", r.name, r.old, r.new, r.delta, mark)
		}
	}
}
