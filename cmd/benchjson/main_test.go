package main

import "testing"

// TestParseTags: parse extracts the scheme, telemetry, and repair tags
// from sub-benchmark names (with the -GOMAXPROCS suffix stripped) and the
// standard and custom metrics from the measurement fields.
func TestParseTags(t *testing.T) {
	out := `goos: linux
pkg: repro/internal/machine
cpu: Test CPU @ 2.00GHz
BenchmarkUpdateRow-8                	    1000	      1234 ns/op	      16 B/op	       1 allocs/op
BenchmarkUpdateRowRepair/repair=off-8 	     500	      1300 ns/op	      16 B/op	       1 allocs/op
BenchmarkUpdateRowRepair/repair=verify+spare-8	     300	      2600 ns/op	      32 B/op	       2 allocs/op
BenchmarkSchemeScrub/scheme=hamming-8	     200	      9000 ns/op	       5.0 blocks/op
BenchmarkTelemetryOverhead/telemetry=on-8	   10000	       120 ns/op
`
	cpu, results := parse(out)
	if cpu != "Test CPU @ 2.00GHz" {
		t.Fatalf("cpu = %q", cpu)
	}
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5", len(results))
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	plain := byName["BenchmarkUpdateRow"]
	if plain.Repair != "" || plain.Scheme != "" || plain.Telemetry != "" {
		t.Fatalf("untagged benchmark picked up tags: %+v", plain)
	}
	if plain.NsPerOp != 1234 || plain.Pkg != "repro/internal/machine" {
		t.Fatalf("plain result wrong: %+v", plain)
	}
	if r := byName["BenchmarkUpdateRowRepair/repair=off"]; r.Repair != "off" {
		t.Fatalf("repair=off tag = %q", r.Repair)
	}
	vs := byName["BenchmarkUpdateRowRepair/repair=verify+spare"]
	if vs.Repair != "verify+spare" {
		t.Fatalf("repair=verify+spare tag = %q (the + must survive)", vs.Repair)
	}
	if vs.NsPerOp != 2600 || vs.AllocsOp != 2 {
		t.Fatalf("tagged metrics wrong: %+v", vs)
	}
	if r := byName["BenchmarkSchemeScrub/scheme=hamming"]; r.Scheme != "hamming" || r.Metrics["blocks/op"] != 5 {
		t.Fatalf("scheme result wrong: %+v", r)
	}
	if r := byName["BenchmarkTelemetryOverhead/telemetry=on"]; r.Telemetry != "on" {
		t.Fatalf("telemetry tag = %q", r.Telemetry)
	}
}
