// Command benchjson runs the repository benchmark suite (the E1–E7
// experiments plus the substrate microbenchmarks) and writes a
// machine-readable perf snapshot to BENCH_<date>.json, giving the repo a
// benchmark trajectory: each snapshot records ns/op, B/op, allocs/op and
// any custom metrics per benchmark, with enough environment metadata to
// compare runs.
//
// Usage:
//
//	go run ./cmd/benchjson [-bench regex] [-benchtime 3x] [-count N] [-pkg ./...] [-out FILE]
//
// With -count N each benchmark runs N times and the snapshot records the
// fastest sample — the minimum is the standard noise-robust estimator,
// which matters when a snapshot feeds the benchdiff regression gate on a
// shared or single-core host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement.
type Result struct {
	Name       string `json:"name"`
	Pkg        string `json:"pkg"`
	Iterations int    `json:"iterations"`
	// Scheme tags measurements of a named protection code: parsed from a
	// `/scheme=NAME` sub-benchmark component, so snapshots can compare
	// ECC backends (diagonal vs hamming vs parity) by field instead of by
	// name-mangling.
	Scheme string `json:"scheme,omitempty"`
	// Telemetry tags the instrumentation-overhead measurements: parsed
	// from a `/telemetry=on|off` sub-benchmark component, so snapshots
	// can compare the enabled and disabled hot-path cost by field.
	Telemetry string `json:"telemetry,omitempty"`
	// Repair tags the self-healing-overhead measurements: parsed from a
	// `/repair=POLICY` sub-benchmark component (off, verify,
	// verify+spare), so snapshots can compare the write-verify tax by
	// field.
	Repair     string             `json:"repair,omitempty"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op"`
	AllocsOp   float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the full perf record written to BENCH_<date>.json.
type Snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPU       string   `json:"cpu,omitempty"`
	BenchTime string   `json:"benchtime"`
	Bench     string   `json:"bench"`
	Results   []Result `json:"results"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)
	// procSuffix is the -GOMAXPROCS suffix go test appends to benchmark
	// names on multi-core hosts; it must be stripped so snapshots taken
	// on different machines join by name.
	procSuffix = regexp.MustCompile(`-\d+$`)
	// schemeTag extracts the protection-code tag from sub-benchmark names
	// like BenchmarkSchemeScrub/scheme=hamming.
	schemeTag = regexp.MustCompile(`/scheme=([A-Za-z0-9_-]+)`)
	// telemetryTag extracts the instrumentation tag from sub-benchmark
	// names like BenchmarkTelemetryOverhead/telemetry=off.
	telemetryTag = regexp.MustCompile(`/telemetry=(on|off)`)
	// repairTag extracts the self-healing tag from sub-benchmark names
	// like BenchmarkUpdateRowRepair/repair=verify+spare.
	repairTag = regexp.MustCompile(`/repair=([A-Za-z0-9+_-]+)`)
)

func main() {
	bench := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "3x", "value passed to go test -benchtime")
	count := flag.Int("count", 1, "samples per benchmark; the snapshot keeps each benchmark's fastest")
	pkgs := flag.String("pkg", "./...", "package pattern to benchmark")
	out := flag.String("out", "", "output file (default BENCH_<date>.json)")
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchmem", "-benchtime", *benchtime,
		"-count", strconv.Itoa(*count), *pkgs)
	raw, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n%s", err, raw)
		os.Exit(1)
	}

	snap := Snapshot{
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		BenchTime: *benchtime,
		Bench:     *bench,
	}
	snap.CPU, snap.Results = parse(string(raw))

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d results to %s\n", len(snap.Results), path)
}

// parse extracts benchmark results from `go test -bench` output. With
// -count > 1 each benchmark appears once per sample; the fastest sample
// wins, keeping the snapshot one-row-per-benchmark and minimizing
// scheduling noise.
func parse(out string) (cpu string, results []Result) {
	pkg := ""
	index := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimRight(line, "\r")
		if s, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = s
			continue
		}
		if s, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = s
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		r := Result{Name: procSuffix.ReplaceAllString(m[1], ""), Pkg: pkg, Iterations: iters}
		if tag := schemeTag.FindStringSubmatch(r.Name); tag != nil {
			r.Scheme = tag[1]
		}
		if tag := telemetryTag.FindStringSubmatch(r.Name); tag != nil {
			r.Telemetry = tag[1]
		}
		if tag := repairTag.FindStringSubmatch(r.Name); tag != nil {
			r.Repair = tag[1]
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsOp = val
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = val
			}
		}
		if at, seen := index[r.Pkg+"."+r.Name]; seen {
			if r.NsPerOp < results[at].NsPerOp {
				results[at] = r
			}
			continue
		}
		index[r.Pkg+"."+r.Name] = len(results)
		results = append(results, r)
	}
	return cpu, results
}
