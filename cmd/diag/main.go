// Command diag demonstrates the concepts of Figures 1 and 2: MAGIC's
// row/column parallelism, the Θ(n) update cost that kills horizontal ECC
// for PIM, the wrap-around diagonal placement that restores Θ(1), and the
// shift pattern the barrel shifters implement.
package main

import (
	"flag"
	"fmt"

	"repro/internal/ecc"
	"repro/internal/shifter"
	"repro/internal/xbar"
)

func main() {
	m := flag.Int("m", 5, "block side length for the pattern demos (odd)")
	flag.Parse()

	fmt.Println("== Fig 1: one-cycle parallel MAGIC NOR across rows and columns ==")
	x := xbar.New(4, 6)
	x.Set(0, 0, true)
	x.Set(1, 1, true)
	x.Set(3, 0, true)
	x.InitColumnsInRows([]int{5}, x.AllRows())
	x.NORRows(0, 1, 5, x.AllRows()) // col5 = NOR(col0, col1) in every row
	fmt.Printf("after in-row NOR(col0,col1)->col5 in all 4 rows (1 gate cycle, %d gates):\n%s\n\n",
		x.Stats().GateCount, x.Mat())

	fmt.Println("== Fig 2(a): horizontal check-bits break under column-parallel ops ==")
	n := 1020
	w := 8
	hRow := ecc.HorizontalTouchRowOp(n)
	hCol := ecc.HorizontalTouchColOp(n, w)
	fmt.Printf("horizontal code, word=%d: row-parallel op → %d changed data bits per check bit\n", w, hRow.MaxPerCheck)
	fmt.Printf("horizontal code, word=%d: col-parallel op → %d changed data bits per check bit (Θ(n) recompute)\n\n", w, hCol.MaxPerCheck)

	fmt.Println("== Fig 2(b): diagonal check-bits keep every parallel op at Θ(1) ==")
	p := ecc.Params{N: n, M: 15}
	cells := make([][2]int, n)
	for r := 0; r < n; r++ {
		cells[r] = [2]int{r, 7}
	}
	d := ecc.MeasureDiagonalTouch(p, cells)
	fmt.Printf("diagonal code: a column write across all %d rows touches %d check bits, max %d data bit(s) each\n\n",
		n, d.ChecksTouched, d.MaxPerCheck)

	fmt.Printf("== Fig 2(c): the shift pattern (leading diagonal index, m=%d) ==\n", *m)
	for _, row := range shifter.ShiftPattern(*m) {
		for _, v := range row {
			fmt.Printf("%3d", v)
		}
		fmt.Println()
	}
	fmt.Println("\neach row is the one above rotated by one position — exactly what a")
	fmt.Println("per-block barrel shifter with shift = (line index mod m) implements.")

	fmt.Println("\n== Syndrome decode: locating a single error ==")
	pp := ecc.Params{N: *m, M: *m}
	fmt.Printf("block %dx%d: a data error at (2,1) flips leading diagonal %d and counter diagonal %d;\n",
		*m, *m, pp.LeadIdx(2, 1), pp.CounterIdx(2, 1))
	lr, lc := pp.Intersect(pp.LeadIdx(2, 1), pp.CounterIdx(2, 1))
	fmt.Printf("decoding that pair re-locates the unique cell: (%d,%d)\n", lr, lc)
}
