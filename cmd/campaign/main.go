// Command campaign runs the fault-campaign conformance engine across a
// full mMPU fleet and emits a machine-readable JSON report: adjudicated
// outcome counts, per-codeword-position histograms, bit-serial reference
// agreement, and an optional SER sweep. It is the executable form of the
// paper's reliability claim — every single error per block between scrubs
// is corrected, doubles are detected, nothing is silently miscorrected —
// and the regression gate every future performance PR inherits.
//
// Runs are deterministic in -seed: the same flags reproduce the same
// report bit for bit, and every result field is identical under any
// -workers value (only the informational worker count differs).
//
// Examples:
//
//	campaign -model transient -ser 1e-4
//	campaign -model stuck1 -rounds 16 -seed 7
//	campaign -model lines -ser 1e-6 -skew 2
//	campaign -sweep 1e-5,1e-4,1e-3,1e-2
//	campaign -ecc hamming -ser 1e-4        # horizontal Hamming SEC-DED backend
//	campaign -ecc parity -ser 1e-4         # detect-only parity baseline
//	campaign -ecc diagonal-x4 -model lines:4   # interleaved: line bursts decompose
//	campaign -schemes all -model lines:4   # scheme-comparison matrix, one row per code
//	campaign -ecc=false -ser 1e-4          # the unprotected baseline
//	campaign -model stuck1 -repair verify+spare   # self-healing: silent → repaired
//	campaign -model stuck1 -repair verify+spare -spares 0   # exhausted budget, still never silent
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/area"
	"repro/internal/campaign"
	"repro/internal/cliflags"
	"repro/internal/ecc"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/mmpu"
	"repro/internal/telemetry"
)

// runReport is the JSON summary of one fleet campaign at one SER point.
type runReport struct {
	SER           float64          `json:"ser"`
	Rounds        int64            `json:"rounds"`
	Injected      int64            `json:"injected"`
	Outcomes      map[string]int64 `json:"outcomes"`
	ByKind        map[string]int64 `json:"by_kind,omitempty"`
	RefChecks     int64            `json:"ref_checks"`
	RefMismatches int64            `json:"ref_mismatches"`
	Conformant    bool             `json:"conformant"`
	// Repair carries the run's self-healing activity, present only when a
	// repair policy is active (default reports stay byte-identical).
	Repair *repairCounts `json:"repair,omitempty"`
}

// repairCounts is the self-healing activity of one campaign run.
type repairCounts struct {
	VerifyMismatches int64 `json:"verify_mismatches"`
	CellsRetired     int64 `json:"cells_retired"`
	SparesExhausted  int64 `json:"spares_exhausted"`
}

// report is the full JSON document.
type report struct {
	Scenario string  `json:"scenario"`
	Model    string  `json:"model"`
	Seed     int64   `json:"seed"`
	Workers  int     `json:"workers"`
	Hours    float64 `json:"hours"`
	Skew     float64 `json:"skew,omitempty"`
	Geometry struct {
		N, M, K, Banks, PerBank int
		ECC                     bool
		// Scheme names the protection code; omitted for the default
		// diagonal code so default reports stay byte-identical to the
		// pre-scheme-layer engine.
		Scheme string `json:",omitempty"`
	} `json:"geometry"`
	// RepairPolicy/RepairSpares describe the active self-healing
	// configuration; both are omitted with -repair off.
	RepairPolicy string    `json:"repair_policy,omitempty"`
	RepairSpares int       `json:"repair_spares,omitempty"`
	Run          runReport `json:"run"`
	// Positions maps each outcome to its histogram over in-block codeword
	// positions lr·M+lc — the codeword-spectrum view of where faults land.
	Positions map[string][]int64 `json:"positions,omitempty"`
	Sweep     []runReport        `json:"sweep,omitempty"`

	// SchemeMatrix is the area/coverage comparison emitted under -schemes:
	// one row per protection code, pairing the campaign's outcome tally
	// with the scheme's cost point (stored bits, device budget, update
	// reads). Omitted without the flag, keeping default reports
	// byte-identical.
	SchemeMatrix []schemeRow `json:"scheme_matrix,omitempty"`

	// Telemetry is the run's metric snapshot, present only under
	// -telemetry (pointer + omitempty keep default reports
	// byte-identical). Adjudication outcomes appear as
	// campaign_outcomes_total{outcome="..."} series.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// schemeRow is one row of the -schemes comparison matrix.
type schemeRow struct {
	Scheme string `json:"scheme"`
	// Area is the scheme's cost point at this geometry (check bits,
	// device budget, update reads); its Err field is set when the scheme
	// rejects the geometry, in which case no campaign ran.
	Area area.SchemePoint `json:"area"`
	// Run is the scheme's campaign tally under the identical model, seed,
	// and rounds; nil when the geometry was rejected.
	Run *runReport `json:"run,omitempty"`
	// CorrectedFrac is corrected/injected — the coverage axis of the
	// matrix (repaired cells count as corrected coverage).
	CorrectedFrac float64 `json:"corrected_frac,omitempty"`
}

// schemeList resolves the -schemes flag: "all" means every registered
// scheme, otherwise a comma-separated list of names.
func schemeList(v string) ([]string, error) {
	if v == "all" {
		return ecc.SchemeNames(), nil
	}
	var names []string
	for _, s := range strings.Split(v, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if _, err := ecc.SchemeByName(s); err != nil {
			return nil, err
		}
		names = append(names, s)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("campaign: -schemes %q names no schemes", v)
	}
	return names, nil
}

func summarize(ser float64, tl campaign.Tally, repairOn bool) runReport {
	r := runReport{
		SER:           ser,
		Rounds:        tl.Rounds,
		Injected:      tl.Injected,
		Outcomes:      make(map[string]int64, campaign.NumOutcomes),
		ByKind:        make(map[string]int64),
		RefChecks:     tl.RefChecks,
		RefMismatches: tl.RefMismatches,
		Conformant:    tl.Conformant(),
	}
	if repairOn {
		r.Repair = &repairCounts{
			VerifyMismatches: tl.VerifyMismatches,
			CellsRetired:     tl.CellsRetired,
			SparesExhausted:  tl.SparesExhausted,
		}
	}
	for o := 0; o < campaign.NumOutcomes; o++ {
		if o == int(campaign.Repaired) && !repairOn {
			// The repaired outcome exists only with a repair policy; keep
			// the default report's outcome set unchanged.
			continue
		}
		r.Outcomes[campaign.Outcome(o).String()] = tl.Counts[o]
	}
	for k, n := range tl.ByKind {
		if n > 0 {
			r.ByKind[faults.Kind(k).String()] = n
		}
	}
	return r
}

func main() {
	var geo cliflags.Geometry
	var eccSel cliflags.ECC
	var tel cliflags.Telemetry
	var repairSel cliflags.Repair
	var workers int
	var seed int64
	cliflags.RegisterGeometry(flag.CommandLine, &geo,
		cliflags.Geometry{N: 45, M: 15, K: 2, Banks: 4, PerBank: 2})
	cliflags.RegisterECC(flag.CommandLine, &eccSel)
	cliflags.RegisterRepair(flag.CommandLine, &repairSel)
	model := flag.String("model", "transient",
		"fault model: "+strings.Join(faults.ModelNames(), ", "))
	ser := flag.Float64("ser", 1e-4, "injection rate [FIT/bit; FIT/line for lines]")
	hours := flag.Float64("hours", 1e9,
		"accelerated exposure per round [device-hours]; the default compresses -ser into a per-round flip probability of ser (e.g. 1e-4 FIT/bit -> ~1e-4/bit/round)")
	rounds := flag.Int("rounds", 4, "campaign rounds per crossbar")
	skew := flag.Float64("skew", 0, "per-crossbar rate-skew exponent (0 = uniform fleet)")
	cliflags.RegisterWorkers(flag.CommandLine, &workers, "worker shards (0 = GOMAXPROCS, capped at banks)")
	cliflags.RegisterSeed(flag.CommandLine, &seed, "campaign base seed (runs are reproducible from this)")
	sweep := flag.String("sweep", "", "comma-separated extra SER points to sweep (same seed each)")
	schemesFlag := flag.String("schemes", "",
		"emit a scheme-comparison matrix: 'all' or a comma-separated list of registered schemes, each run under the identical campaign")
	cliflags.RegisterTelemetry(flag.CommandLine, &tel)
	flag.Parse()

	eccSel.Resolve()
	repairSel.Resolve()
	scheme, eccOn := eccSel.Scheme, eccSel.Enabled
	repairOn := repairSel.Config.Enabled()
	n, m, k, banks, perBank := &geo.N, &geo.M, &geo.K, &geo.Banks, &geo.PerBank
	stop, err := tel.Serve()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stop()
	cfg := fleet.Config{
		Org: mmpu.Custom(*n, *banks, *perBank), M: *m, K: *k, ECCEnabled: eccOn, Scheme: scheme,
		Repair: repairSel.Config,
		Workers: workers, Seed: seed, Telemetry: tel.Registry(),
	}
	runWith := func(c fleet.Config, serPoint float64) campaign.Tally {
		w, err := fleet.ScenarioWithOptions("campaign", fleet.ScenarioOptions{
			Intensity: *rounds, Model: *model, SER: serPoint, Hours: *hours, Skew: *skew,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res, err := fleet.Run(c, w)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return res.Campaign
	}
	runAt := func(serPoint float64) campaign.Tally { return runWith(cfg, serPoint) }

	tl := runAt(*ser)
	rep := report{
		Scenario: "campaign",
		Model:    *model,
		Seed:     seed,
		Workers:  cfg.EffectiveWorkers(),
		Hours:    *hours,
		Skew:     *skew,
		Run:      summarize(*ser, tl, repairOn),
	}
	if repairOn {
		rep.RepairPolicy = repairSel.Config.Policy.String()
		rep.RepairSpares = repairSel.Config.SpareBudget()
	}
	rep.Geometry.N, rep.Geometry.M, rep.Geometry.K = *n, *m, *k
	rep.Geometry.Banks, rep.Geometry.PerBank = *banks, *perBank
	rep.Geometry.ECC = eccOn
	if scheme != ecc.SchemeDiagonal {
		rep.Geometry.Scheme = scheme
	}
	if tl.M > 0 {
		rep.Positions = make(map[string][]int64)
		for o := 0; o < campaign.NumOutcomes; o++ {
			if tl.Positions[o] != nil {
				rep.Positions[campaign.Outcome(o).String()] = tl.Positions[o]
			}
		}
	}
	for _, s := range strings.Split(*sweep, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		point, err := strconv.ParseFloat(s, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: bad sweep point %q: %v\n", s, err)
			os.Exit(2)
		}
		rep.Sweep = append(rep.Sweep, summarize(point, runAt(point), repairOn))
	}
	if *schemesFlag != "" {
		names, err := schemeList(*schemesFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ac := area.Config{N: *n, M: *m, K: *k}
		for _, name := range names {
			pt, err := ac.PointFor(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			row := schemeRow{Scheme: name, Area: pt}
			if pt.Err == "" {
				scfg := cfg
				scfg.ECCEnabled = true
				scfg.Scheme = name
				stl := runWith(scfg, *ser)
				run := summarize(*ser, stl, repairOn)
				row.Run = &run
				if stl.Injected > 0 {
					row.CorrectedFrac = float64(stl.Counts[campaign.Corrected]+stl.Counts[campaign.Repaired]) /
						float64(stl.Injected)
				}
			}
			rep.SchemeMatrix = append(rep.SchemeMatrix, row)
		}
	}
	if tel.Snapshot {
		snap := tel.Registry().Snapshot()
		rep.Telemetry = &snap
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tel.Wait()
}
