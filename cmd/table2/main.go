// Command table2 regenerates the paper's Table II: memristor and
// transistor counts of the proposed per-crossbar architecture.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/area"
)

func main() {
	n := flag.Int("n", 1020, "crossbar side length")
	m := flag.Int("m", 15, "ECC block side length")
	k := flag.Int("k", 3, "processing crossbars")
	flag.Parse()

	cfg := area.Config{N: *n, M: *m, K: *k}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Table II — memristor/transistor count, n=%d, m=%d, k=%d\n\n", *n, *m, *k)
	fmt.Printf("%-16s %14s %14s   %s\n", "Unit", "# Memristor", "# Transistor", "Expression")
	for _, u := range cfg.Table() {
		fmt.Printf("%-16s %14d %14d   %s\n", u.Name, u.Memristors, u.Transistors, u.Expression)
	}
	fmt.Printf("\nMemristor overhead over the bare data array: %.1f%%\n", 100*cfg.MemristorOverhead())
}
