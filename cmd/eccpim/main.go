// Command eccpim runs the full proposed architecture end to end: it loads
// per-row operands into a protected crossbar, injects soft errors at a
// chosen rate, executes a SIMPLER-mapped function with SIMD row
// parallelism, and reports whether the ECC mechanism kept every row's
// result correct — alongside an unprotected baseline run of the same
// campaign.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bitmat"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/machine"
	"repro/internal/synth"
)

func main() {
	n := flag.Int("n", 45, "crossbar side (multiple of m)")
	m := flag.Int("m", 15, "ECC block side (odd)")
	k := flag.Int("k", 2, "processing crossbars")
	width := flag.Int("width", 8, "adder width (the demo function is a ripple-carry adder)")
	nFaults := flag.Int("faults", 1, "soft errors injected into the input region before execution")
	seed := flag.Int64("seed", 1, "PRNG seed")
	flag.Parse()

	mp, err := buildAdder(*width, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("function: %d-bit adder (%d NOR gates, %d cycles single-row)\n",
		*width, mp.GateCycles, mp.Latency())
	fmt.Printf("crossbar: %dx%d, blocks %dx%d, %d PCs, SIMD across %d rows\n\n", *n, *n, *m, *m, *k, *n)

	okProt, corrProt := run(true, mp, *n, *m, *k, *nFaults, *seed)
	okBase, _ := run(false, mp, *n, *m, *k, *nFaults, *seed)

	fmt.Printf("%-22s rows correct: %d/%d   corrections: %d\n", "proposed (diagonal ECC)", okProt, *n, corrProt)
	fmt.Printf("%-22s rows correct: %d/%d\n", "baseline (no ECC)", okBase, *n)
	if okProt == *n && okBase < *n {
		fmt.Println("\nthe ECC mechanism absorbed the soft errors; the baseline silently corrupted results.")
	}
}

func buildAdder(width, rowSize int) (*synth.Mapping, error) {
	return fleet.AdderKernel(width, rowSize)
}

func run(ecc bool, mp *synth.Mapping, n, m, k, nFaults int, seed int64) (rowsCorrect, corrections int) {
	mach, err := machine.New(machine.Config{N: n, M: m, K: k, ECCEnabled: ecc})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(seed))
	inputs := make(map[int][]bool, n)
	for r := 0; r < n; r++ {
		in := make([]bool, mp.Netlist.NumInputs())
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		inputs[r] = in
	}
	mach.LoadInputs(mp, inputs)

	// Inject faults uniformly in the input region (the paper's threat
	// model: errors accumulate in input memristors before execution).
	inj := faults.NewInjector(faults.FlashSERFITPerBit, seed+100)
	for i := 0; i < nFaults; i++ {
		r, _ := inj.UniformCell(n, 1)
		c, _ := inj.UniformCell(mp.Netlist.NumInputs(), 1)
		mach.InjectDataFault(r, c)
	}

	if err := mach.ExecuteSIMD(mp, allRows(mach, n)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for r := 0; r < n; r++ {
		want := mp.Netlist.Eval(inputs[r])
		got := mach.ReadOutputs(mp, r)
		ok := true
		for i := range want {
			if got[i] != want[i] {
				ok = false
				break
			}
		}
		if ok {
			rowsCorrect++
		}
	}
	return rowsCorrect, mach.Stats().Corrections
}

func allRows(m *machine.Machine, n int) *bitmat.Vec {
	return m.MEM().AllRows()
}
