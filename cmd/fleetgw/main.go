// Command fleetgw is the fleet gateway: it dials a served fleet, verifies
// every node's geometry handshake, drives a read/write workload through
// the client-side router (consistent bank→node routing, batching,
// pipelining, per-node backpressure), and reports throughput, batch
// latency percentiles, per-node serving stats, and — with -telemetry —
// the merged fleet-wide telemetry snapshot.
//
// Every write is read back and verified, so a passing run is also a
// correctness proof of the full network path. With -verify the gateway
// additionally audits the fleet's scrub-rotation safety: executed grant
// epochs must be unique across all nodes (no double-scrub) and a clean
// memory must report zero uncorrectable scrub words; violations exit
// nonzero. Example:
//
//	fleetgw -peers :7001,:7002,:7003 -requests 100000 -verify -telemetry
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cliflags"
	"repro/internal/mmpu"
	"repro/internal/netfleet"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// report is the gateway's JSON output.
type report struct {
	Nodes     int   `json:"nodes"`
	Requests  int64 `json:"requests"`
	Errors    int64 `json:"errors"`
	Mismatch  int64 `json:"read_mismatches"`
	Clients   int   `json:"clients"`
	Batch     int   `json:"batch"`
	Window    int   `json:"window"`
	ChannelNs int64 `json:"channel_ns,omitempty"`

	DurationNs int64   `json:"duration_ns"`
	ReqPerSec  float64 `json:"req_per_sec"`
	P50BatchNs int64   `json:"p50_batch_ns"`
	P99BatchNs int64   `json:"p99_batch_ns"`

	Verified bool                 `json:"verified,omitempty"`
	Fleet    []netfleet.NodeStats `json:"fleet"`

	Telemetry *telemetry.WireSnapshot `json:"telemetry,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("fleetgw", flag.ExitOnError)
	var g cliflags.Geometry
	cliflags.RegisterGeometry(fs, &g, cliflags.Geometry{N: 45, M: 15, K: 2, Banks: 8, PerBank: 2})
	var seed int64
	cliflags.RegisterSeed(fs, &seed, "workload seed")
	peers := fs.String("peers", "", "comma-separated node addresses in node order")
	requests := fs.Int64("requests", 20000, "total requests to drive (writes + verifying reads)")
	clients := fs.Int("clients", 4, "concurrent gateway clients")
	batch := fs.Int("batch", 256, "requests per wire batch")
	window := fs.Int("window", 8, "in-flight batches per node (backpressure bound)")
	retry := fs.Duration("retry-deadline", 5*time.Second, "per-call retry budget for unreachable nodes")
	channelNs := fs.Int64("channel-ns", 0, "annotate the report with the fleet's modeled channel occupancy")
	verify := fs.Bool("verify", false, "audit scrub-rotation safety (unique grant epochs, zero uncorrectable) and exit nonzero on violation")
	withTel := fs.Bool("telemetry", false, "embed the merged fleet telemetry snapshot in the report")
	_ = fs.Parse(os.Args[1:])

	if *peers == "" {
		fmt.Fprintln(os.Stderr, "fleetgw: -peers is required")
		return 2
	}
	addrs := strings.Split(*peers, ",")
	org := mmpu.Custom(g.N, g.Banks, g.PerBank)
	f, err := netfleet.Dial(netfleet.FleetConfig{
		Org: org, Addrs: addrs,
		BatchSize: *batch, Window: *window, RetryDeadline: *retry,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetgw: %v\n", err)
		return 1
	}
	defer f.Close()
	if err := f.Check(); err != nil {
		fmt.Fprintf(os.Stderr, "fleetgw: handshake: %v\n", err)
		return 1
	}

	// Each client owns a disjoint slice of 64-bit slots, so concurrent
	// batches never overlap and every read has one defined expected value.
	slots := org.DataBits() / 64
	perClient := slots / int64(*clients)
	if perClient == 0 {
		fmt.Fprintf(os.Stderr, "fleetgw: %d clients over %d slots\n", *clients, slots)
		return 2
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		rtts   []int64
		errs   int64
		wrong  int64
		served int64
	)
	perClientReqs := *requests / int64(*clients)
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			base := int64(c) * perClient
			var myRtts []int64
			var myErrs, myWrong, mine int64
			slot := int64(0)
			for mine < perClientReqs {
				// A batch never exceeds the client's slot pool: one
				// in-flight batch must not contain the same slot twice.
				n := int(*batch)
				if int64(n) > perClient {
					n = int(perClient)
				}
				if rem := perClientReqs - mine; rem < int64(2*n) {
					n = int(rem / 2)
				}
				if n == 0 {
					break
				}
				writes := make([]serve.Request, n)
				want := make([]uint64, n)
				for i := range writes {
					s := base + (slot+int64(i))%perClient
					width := 1 + rng.Intn(64)
					v := rng.Uint64() & (1<<width - 1)
					writes[i] = serve.Request{Op: serve.OpWrite, Addr: s * 64, Width: width, Data: v}
					want[i] = v
				}
				slot += int64(n)
				t0 := time.Now()
				for _, r := range f.Do(writes) {
					if r.Err != nil {
						myErrs++
					}
				}
				reads := make([]serve.Request, n)
				for i, w := range writes {
					reads[i] = serve.Request{Op: serve.OpRead, Addr: w.Addr, Width: w.Width}
				}
				for i, r := range f.Do(reads) {
					switch {
					case r.Err != nil:
						myErrs++
					case r.Data != want[i]:
						myWrong++
					}
				}
				rtt := time.Since(t0).Nanoseconds() / 2 // two batches timed together
				myRtts = append(myRtts, rtt, rtt)
				mine += int64(2 * n)
			}
			mu.Lock()
			rtts = append(rtts, myRtts...)
			errs += myErrs
			wrong += myWrong
			served += mine
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats, err := f.Stats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetgw: stats: %v\n", err)
		return 1
	}
	rep := report{
		Nodes: f.Nodes(), Requests: served, Errors: errs, Mismatch: wrong,
		Clients: *clients, Batch: *batch, Window: *window, ChannelNs: *channelNs,
		DurationNs: elapsed.Nanoseconds(),
		ReqPerSec:  float64(served) / elapsed.Seconds(),
		Fleet:      stats,
	}
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	if len(rtts) > 0 {
		rep.P50BatchNs = rtts[len(rtts)/2]
		rep.P99BatchNs = rtts[len(rtts)*99/100]
	}

	var snap telemetry.Snapshot
	if *withTel || *verify {
		snap, err = f.Snapshot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetgw: snapshot: %v\n", err)
			return 1
		}
	}
	if *withTel {
		w := snap.Wire()
		rep.Telemetry = &w
	}

	code := 0
	if errs > 0 || wrong > 0 {
		fmt.Fprintf(os.Stderr, "fleetgw: %d errors, %d read mismatches\n", errs, wrong)
		code = 1
	}
	if *verify {
		if err := audit(stats, snap, served); err != nil {
			fmt.Fprintf(os.Stderr, "fleetgw: verify: %v\n", err)
			code = 1
		} else {
			rep.Verified = true
		}
	}
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	return code
}

// audit is the fleet-wide safety check: scrub grant epochs unique across
// nodes, zero uncorrectable scrub words on a clean memory, and the
// merged snapshot accounting for at least every request driven.
func audit(stats []netfleet.NodeStats, snap telemetry.Snapshot, served int64) error {
	seen := map[int64]int{}
	for _, s := range stats {
		for _, g := range s.Grants {
			if prev, dup := seen[g.Epoch]; dup {
				return fmt.Errorf("scrub epoch %d executed on node %d and node %d", g.Epoch, prev, s.Node)
			}
			seen[g.Epoch] = s.Node
		}
	}
	var uncorr, reqs int64
	for _, c := range snap.Counters {
		switch c.Name {
		case "netfleet_scrub_uncorrectable_total":
			uncorr += c.Value
		case "netfleet_requests_total":
			reqs += c.Value
		}
	}
	if uncorr != 0 {
		return fmt.Errorf("%d uncorrectable scrub words on a clean memory", uncorr)
	}
	// Split cross-shard spans make the fleet count >= the driven count.
	if reqs < served {
		return fmt.Errorf("fleet telemetry accounts %d requests, gateway drove %d", reqs, served)
	}
	return nil
}
