// Command served runs one fleet node: a shard server owning a contiguous
// bank range of the global mMPU organization, speaking the netfleet wire
// protocol, and participating in the fleet's self-stabilizing scrub
// rotation. A fleet is N identical invocations differing only in -node:
//
//	served -peers host0:7001,host1:7001,host2:7001 -node 0 &
//	served -peers host0:7001,host1:7001,host2:7001 -node 1 &
//	served -peers host0:7001,host1:7001,host2:7001 -node 2 &
//
// Geometry and memory flags (-n -m -k -banks -perbank -ecc -repair) are
// the shared CLI surface and must be identical fleet-wide — clients
// verify this at dial time. -channel-ns models the node's memory-channel
// bandwidth (one request occupies the channel that many nanoseconds),
// making fleet scaling device-bound and host-independent.
//
// On startup the node prints one JSON line with its identity; on SIGINT/
// SIGTERM it shuts down and prints its serving stats as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/internal/election"
	"repro/internal/mmpu"
	"repro/internal/netfleet"
	"repro/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("served", flag.ExitOnError)
	var g cliflags.Geometry
	cliflags.RegisterGeometry(fs, &g, cliflags.Geometry{N: 45, M: 15, K: 2, Banks: 8, PerBank: 2})
	var eccf cliflags.ECC
	cliflags.RegisterECC(fs, &eccf)
	var rep cliflags.Repair
	cliflags.RegisterRepair(fs, &rep)
	var workers int
	cliflags.RegisterWorkers(fs, &workers, "serve workers for this node's shard (0 = one per owned bank)")
	var tel cliflags.Telemetry
	cliflags.RegisterTelemetry(fs, &tel)

	node := fs.Int("node", 0, "this node's index in the fleet")
	peers := fs.String("peers", "", "comma-separated node addresses in node order; the fleet size is the count")
	addr := fs.String("addr", "", "listen address override (default: the -peers entry at -node)")
	queue := fs.Int("queue", 0, "per-worker queue depth (0 = serve default)")
	batch := fs.Int("batch", 0, "worker batch window (0 = serve default)")
	scrubEvery := fs.Int("scrub-every", 0, "node-local scrub admission period in batches (0 = fleet rotation only)")
	round := fs.Duration("round", 25*time.Millisecond, "election round period")
	electionK := fs.Int("election-k", election.DefaultK, "election hearsay lease in rounds")
	channelNs := fs.Int64("channel-ns", 0, "modeled memory-channel occupancy per request in nanoseconds (0 = host speed)")
	_ = fs.Parse(os.Args[1:])
	eccf.Resolve()
	rep.Resolve()

	if *peers == "" {
		fmt.Fprintln(os.Stderr, "served: -peers is required")
		return 2
	}
	addrs := strings.Split(*peers, ",")
	if *node < 0 || *node >= len(addrs) {
		fmt.Fprintf(os.Stderr, "served: -node %d outside the %d-entry -peers list\n", *node, len(addrs))
		return 2
	}
	listen := *addr
	if listen == "" {
		listen = addrs[*node]
	}

	cfg := netfleet.NodeConfig{
		Org:        mmpu.Custom(g.N, g.Banks, g.PerBank),
		Nodes:      len(addrs),
		Index:      *node,
		Addr:       listen,
		Peers:      addrs,
		M:          g.M,
		K:          g.K,
		ECC:        eccf.Enabled,
		Scheme:     eccf.Scheme,
		Repair:     rep.Config,
		Workers:    workers,
		QueueDepth: *queue,
		BatchSize:  *batch,
		ScrubEvery: *scrubEvery,
		Round:      *round,
		ElectionK:  *electionK,
		ChannelNs:  *channelNs,
		Telemetry:  tel.Registry(),
	}
	n, err := netfleet.NewNode(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "served: %v\n", err)
		return 1
	}
	stop, err := tel.Serve()
	if err != nil {
		fmt.Fprintf(os.Stderr, "served: %v\n", err)
		n.Close()
		return 1
	}

	lo, hi := n.Banks()
	enc := json.NewEncoder(os.Stdout)
	_ = enc.Encode(map[string]any{
		"node": *node, "nodes": len(addrs), "addr": n.Addr(),
		"bank_lo": lo, "bank_hi": hi, "channel_ns": *channelNs,
	})

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch

	stats := n.Close()
	_ = stop()
	_ = enc.Encode(struct {
		Node  int         `json:"node"`
		Stats serve.Stats `json:"stats"`
	}{*node, stats})
	return 0
}
