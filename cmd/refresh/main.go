// Command refresh quantifies the comparison the paper's Section II-B
// makes qualitatively: periodic refresh (Tosson et al.) resets drift but
// cannot address abrupt soft errors or the drift completing between
// refreshes, while the proposed ECC corrects both — and the two compose.
package main

import (
	"flag"
	"fmt"

	"repro/internal/reliability"
)

func main() {
	driftFrac := flag.Float64("drift", 0.9, "fraction of the SER that is drift (refresh-addressable)")
	periodH := flag.Float64("tr", 1, "refresh period in hours")
	tau := flag.Float64("tau", 100, "characteristic drift-completion time in hours")
	flag.Parse()

	r := reliability.DefaultRefreshModel()
	r.DriftFraction = *driftFrac
	r.RefreshPeriod = *periodH
	r.DriftTau = *tau

	fmt.Printf("1GB memory MTTF [h] by protection mechanism (drift fraction %.0f%%, Tr=%.2gh, τ=%.0fh)\n\n",
		100**driftFrac, *periodH, *tau)
	fmt.Printf("%12s %14s %14s %14s %14s\n", "SER [FIT/b]", "none", "refresh-only", "ecc-only", "ecc+refresh")
	for _, p := range r.Compare(1e-5, 1e3, 9) {
		fmt.Printf("%12.0e %14.3g %14.3g %14.3g %14.3g\n",
			p.SER,
			p.MTTF[reliability.NoProtection],
			p.MTTF[reliability.RefreshOnly],
			p.MTTF[reliability.ECCOnly],
			p.MTTF[reliability.ECCPlusRefresh])
	}
	ser := 1e-3
	fmt.Printf("\nat SER %.0e: refresh alone buys %.2g×, ECC alone %.2g×, together %.2g×\n",
		ser,
		r.MTTF(reliability.RefreshOnly, ser)/r.MTTF(reliability.NoProtection, ser),
		r.MTTF(reliability.ECCOnly, ser)/r.MTTF(reliability.NoProtection, ser),
		r.MTTF(reliability.ECCPlusRefresh, ser)/r.MTTF(reliability.NoProtection, ser))
}
