// Command loadgen drives the online protected-memory serving layer
// (internal/serve) with synthetic client traffic and emits a JSON report
// of throughput, latency quantiles, coalescing, and scrub/ECC activity.
//
// Traffic is generated as a deterministic trace — open-loop Poisson
// arrivals or lockstep closed-loop clients, over uniform/zipf/scan
// address mixes, optionally under a soft-error fault overlay — and
// replayed in deterministic virtual time: the same flags reproduce the
// same report byte for byte on any machine. -workers is the *modeled*
// bank-worker count (the serving-layer scaling knob E9 sweeps): fewer
// workers means banks share service clocks and queueing grows. Wall-clock
// timing goes to stderr, never into the report.
//
// Examples:
//
//	loadgen -seed 1
//	loadgen -mode closed -clients 64 -mix zipf
//	loadgen -mix scan -width 30 -scrub-period 500
//	loadgen -faults-ser 3e5 -scrub-period 200    # scrubs correct live soft errors
//	loadgen -workers 1                           # one worker serving all banks
//	loadgen -ecc hamming -faults-ser 3e5         # serve over the Hamming SEC-DED backend
//	loadgen -repair verify+spare -faults-model stuck1 -faults-ser 3e5
//	                                             # self-heal stuck cells under live traffic
//	loadgen -compute search                      # mixed tenant issuing online SIMD pipelines
//	loadgen -tenants "client=50/50/0,batch=0/0/100" -admit 400
//	                                             # bound how long batch compute may starve clients
//	loadgen -schemes all -n 60                   # serve the identical trace under every
//	                                             # registered scheme: throughput tax vs area matrix
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/area"
	"repro/internal/cliflags"
	"repro/internal/ecc"
	"repro/internal/fleet"
	"repro/internal/mmpu"
	"repro/internal/pmem"
	"repro/internal/repair"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// options collects every knob the report depends on.
type options struct {
	n, m, k        int
	banks, perBank int
	ecc            bool
	scheme         string // protection code; "" with ecc=true means diagonal

	mode, mix string
	requests  int
	clients   int
	rate      float64
	writeFrac float64
	width     int

	compute string            // SIMD kernel for OpCompute traffic ("" = none)
	tenants []serve.TenantMix // multi-tenant mixes (nil = legacy single tenant)
	admit   int64             // per-round compute admission budget (0 = FIFO)

	workers     int
	batch       int
	scrubPeriod int64
	faultSER    float64
	faultHours  float64
	faultModel  string // fault overlay model ("" = historical transient stream)
	repairCfg   repair.Config
	seed        int64
	telemetry   bool // embed the snapshot in the report
}

// report is the JSON document. Every field is deterministic from the
// options — wall-clock time is deliberately excluded.
type report struct {
	Scenario  string  `json:"scenario"`
	Mode      string  `json:"mode"`
	Mix       string  `json:"mix"`
	Seed      int64   `json:"seed"`
	Requests  int     `json:"requests"`
	Clients   int     `json:"clients"`
	Width     int     `json:"width"`
	WriteFrac float64 `json:"write_frac"`
	Rate      float64 `json:"rate,omitempty"`
	// Compute names the SIMD kernel the trace's OpCompute requests run;
	// AdmitBudget is the per-round compute admission budget in model
	// ticks. Both are omitted for compute-free runs, so default reports
	// stay byte-identical to pre-compute goldens.
	Compute     string `json:"compute,omitempty"`
	AdmitBudget int64  `json:"admit_budget,omitempty"`
	Workers     int    `json:"workers"`
	Geometry    struct {
		N, M, K, Banks, PerBank int
		ECC                     bool
		// Scheme names the protection code; omitted for the default
		// diagonal code so default reports stay byte-identical.
		Scheme string `json:",omitempty"`
	} `json:"geometry"`
	ScrubPeriod int64   `json:"scrub_period,omitempty"`
	FaultSER    float64 `json:"fault_ser,omitempty"`
	FaultModel  string  `json:"fault_model,omitempty"`

	// Repair carries the self-healing configuration and activity, present
	// only when a repair policy is active (default reports stay
	// byte-identical to pre-repair goldens).
	Repair *repairReport `json:"repair,omitempty"`

	Served struct {
		Requests int64 `json:"requests"`
		Reads    int64 `json:"reads"`
		Writes   int64 `json:"writes"`
		// Computes counts served OpCompute requests; ComputeTicks is the
		// total virtual time they occupied (the admission-control currency).
		Computes      int64 `json:"computes,omitempty"`
		ComputeTicks  int64 `json:"compute_ticks,omitempty"`
		Errors        int64 `json:"errors"`
		Batches       int64 `json:"batches"`
		Coalesced     int64 `json:"coalesced"`
		Spanning      int64 `json:"spanning"`
		Segments      int64 `json:"segments"`
		Scrubs        int64 `json:"scrubs"`
		Corrected     int64 `json:"corrected"`
		Uncorrectable int64 `json:"uncorrectable"`
		Injected      int64 `json:"injected"`
	} `json:"served"`
	LatencyTicks fleet.HistSummary `json:"latency_ticks"`
	Ticks        int64             `json:"ticks"`
	// ThroughputPerKilotick is served requests per 1000 model ticks —
	// the deterministic throughput figure of the E9 table.
	ThroughputPerKilotick float64          `json:"throughput_per_kilotick"`
	PerWorkerTicks        []int64          `json:"per_worker_ticks"`
	PerBank               []serve.BankLoad `json:"per_bank"`

	// Tenants is the per-tenant SLO block of multi-tenant runs (one entry
	// per -tenants stream, trace order); omitted for single-tenant runs.
	Tenants []tenantReport `json:"tenants,omitempty"`

	// Telemetry is the run's metric snapshot, present only under
	// -telemetry (the pointer + omitempty keep default reports
	// byte-identical to pre-telemetry goldens). At fixed flags the
	// snapshot is byte-reproducible: every series update commutes.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// tenantReport is one tenant's slice of the report: its op counts and
// latency distribution (P99 is the per-tenant SLO figure E13 sweeps).
type tenantReport struct {
	Name                  string            `json:"name"`
	Requests              int64             `json:"requests"`
	Reads                 int64             `json:"reads"`
	Writes                int64             `json:"writes"`
	Computes              int64             `json:"computes"`
	Errors                int64             `json:"errors"`
	ThroughputPerKilotick float64           `json:"throughput_per_kilotick"`
	LatencyTicks          fleet.HistSummary `json:"latency_ticks"`
}

// repairReport is the self-healing block of the report: the active policy
// plus the fleet-aggregated repair counters after the run.
type repairReport struct {
	Policy           string `json:"policy"`
	Spares           int    `json:"spares"`
	VerifyReads      int64  `json:"verify_reads"`
	VerifyMismatches int64  `json:"verify_mismatches"`
	CellsRetired     int64  `json:"cells_retired"`
	SparesExhausted  int64  `json:"spares_exhausted"`
}

// loadSchemeRow is one row of the -schemes serving-cost matrix: the
// scheme's area/overhead point beside the throughput it sustains on the
// identical trace, and the fractional throughput tax against the plain
// diagonal baseline.
type loadSchemeRow struct {
	Scheme string           `json:"scheme"`
	Area   area.SchemePoint `json:"area"`
	// The serving figures are omitted when the scheme rejects the
	// geometry (Area.Err says why).
	ThroughputPerKilotick float64 `json:"throughput_per_kilotick,omitempty"`
	// ThroughputTax is 1 − throughput/diagonal-throughput: the fraction
	// of serving capacity this scheme's update discipline costs relative
	// to the paper's diagonal code on the same trace.
	ThroughputTax float64 `json:"throughput_tax"`
	Ticks         int64   `json:"ticks,omitempty"`
	Corrected     int64   `json:"corrected"`
	Uncorrectable int64   `json:"uncorrectable"`
	Errors        int64   `json:"errors"`
}

// schemeMatrixDoc is the JSON document of the -schemes mode.
type schemeMatrixDoc struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Geometry struct {
		N, M, K, Banks, PerBank int
	} `json:"geometry"`
	Requests int             `json:"requests"`
	Matrix   []loadSchemeRow `json:"scheme_matrix"`
}

// runSchemeMatrix replays the identical trace under each named scheme
// (plus the diagonal baseline for the tax reference) and renders the
// comparison matrix.
func runSchemeMatrix(o options, sel string) ([]byte, error) {
	var names []string
	if sel == "all" {
		names = ecc.SchemeNames()
	} else {
		for _, s := range strings.Split(sel, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			if _, err := ecc.SchemeByName(s); err != nil {
				return nil, err
			}
			names = append(names, s)
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("loadgen: -schemes %q names no schemes", sel)
		}
	}
	throughput := func(scheme string) (float64, serve.Result, error) {
		so := o
		so.ecc, so.scheme = true, scheme
		_, res, err := run(so, nil)
		if err != nil {
			return 0, res, err
		}
		tp := 0.0
		if res.Ticks > 0 {
			tp = float64(res.Stats.Requests) * 1000 / float64(res.Ticks)
		}
		return tp, res, nil
	}
	baseTp, _, err := throughput(ecc.SchemeDiagonal)
	if err != nil {
		return nil, err
	}
	ac := area.Config{N: o.n, M: o.m, K: o.k}
	var doc schemeMatrixDoc
	doc.Scenario = "loadgen-schemes"
	doc.Seed = o.seed
	doc.Geometry.N, doc.Geometry.M, doc.Geometry.K = o.n, o.m, o.k
	doc.Geometry.Banks, doc.Geometry.PerBank = o.banks, o.perBank
	doc.Requests = o.requests
	for _, name := range names {
		pt, err := ac.PointFor(name)
		if err != nil {
			return nil, err
		}
		row := loadSchemeRow{Scheme: name, Area: pt}
		if pt.Err == "" {
			tp, res, err := throughput(name)
			if err != nil {
				return nil, err
			}
			row.ThroughputPerKilotick = tp
			if baseTp > 0 {
				row.ThroughputTax = 1 - tp/baseTp
			}
			row.Ticks = res.Ticks
			row.Corrected, row.Uncorrectable = res.Stats.Corrected, res.Stats.Uncorrectable
			row.Errors = res.Stats.Errors
		}
		doc.Matrix = append(doc.Matrix, row)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// run executes the whole load generation and renders the report. Split
// from main so the determinism test can call it twice. reg, when
// non-nil, instruments the memory and replay; the snapshot lands in the
// report's telemetry field.
func run(o options, reg *telemetry.Registry) ([]byte, serve.Result, error) {
	mem, err := pmem.New(pmem.Config{
		Org: mmpu.Custom(o.n, o.banks, o.perBank), M: o.m, K: o.k, ECCEnabled: o.ecc,
		Scheme: o.scheme, Repair: o.repairCfg,
	})
	if err != nil {
		return nil, serve.Result{}, err
	}
	mem.Instrument(reg)
	tr, err := serve.GenTrace(mem.Config().Org, serve.TraceOpts{
		Mode: o.mode, Mix: o.mix, Requests: o.requests, Clients: o.clients,
		Rate: o.rate, WriteFrac: o.writeFrac, Width: o.width, Seed: o.seed,
		Tenants: o.tenants, Compute: o.compute,
	})
	if err != nil {
		return nil, serve.Result{}, err
	}
	res, err := serve.Replay(serve.ReplayConfig{
		Mem: mem, Workers: o.workers, BatchSize: o.batch,
		ScrubPeriod: o.scrubPeriod, FaultSER: o.faultSER, FaultHours: o.faultHours,
		FaultModel: o.faultModel, ComputeAdmit: o.admit, Seed: o.seed, Telemetry: reg,
	}, tr)
	if err != nil {
		return nil, serve.Result{}, err
	}

	var rep report
	rep.Scenario = "loadgen"
	rep.Mode, rep.Mix, rep.Seed = o.mode, o.mix, o.seed
	rep.Requests, rep.Clients, rep.Width = o.requests, o.clients, o.width
	rep.WriteFrac, rep.Rate = o.writeFrac, o.rate
	rep.Workers = res.Workers
	rep.Geometry.N, rep.Geometry.M, rep.Geometry.K = o.n, o.m, o.k
	rep.Geometry.Banks, rep.Geometry.PerBank, rep.Geometry.ECC = o.banks, o.perBank, o.ecc
	if o.scheme != "" && o.scheme != ecc.SchemeDiagonal {
		rep.Geometry.Scheme = o.scheme
	}
	rep.ScrubPeriod, rep.FaultSER = o.scrubPeriod, o.faultSER
	rep.FaultModel = o.faultModel
	if tr.Plan != nil {
		rep.Compute = tr.Plan.Kernel
	}
	rep.AdmitBudget = o.admit
	if o.repairCfg.Enabled() {
		rs := mem.RepairStats()
		rep.Repair = &repairReport{
			Policy:           o.repairCfg.Policy.String(),
			Spares:           o.repairCfg.SpareBudget(),
			VerifyReads:      rs.VerifyReads,
			VerifyMismatches: rs.Mismatches,
			CellsRetired:     rs.Retired,
			SparesExhausted:  rs.Exhausted,
		}
	}
	st := res.Stats
	rep.Served.Requests, rep.Served.Reads, rep.Served.Writes = st.Requests, st.Reads, st.Writes
	rep.Served.Computes, rep.Served.ComputeTicks = st.Computes, st.ComputeTicks
	rep.Served.Errors, rep.Served.Batches = st.Errors, st.Batches
	rep.Served.Coalesced, rep.Served.Spanning, rep.Served.Segments = st.Coalesced, st.Spanning, st.Segments
	rep.Served.Scrubs, rep.Served.Corrected = st.Scrubs, st.Corrected
	rep.Served.Uncorrectable, rep.Served.Injected = st.Uncorrectable, st.Injected
	rep.LatencyTicks = st.Lat.Summary()
	rep.Ticks = res.Ticks
	if res.Ticks > 0 {
		rep.ThroughputPerKilotick = float64(st.Requests) * 1000 / float64(res.Ticks)
	}
	rep.PerWorkerTicks = res.PerWorker
	rep.PerBank = res.PerBank
	for _, ts := range st.Tenants {
		t := tenantReport{
			Name: ts.Name, Requests: ts.Requests, Reads: ts.Reads,
			Writes: ts.Writes, Computes: ts.Computes, Errors: ts.Errors,
			LatencyTicks: ts.Lat.Summary(),
		}
		if res.Ticks > 0 {
			t.ThroughputPerKilotick = float64(ts.Requests) * 1000 / float64(res.Ticks)
		}
		rep.Tenants = append(rep.Tenants, t)
	}
	if o.telemetry && reg != nil {
		snap := reg.Snapshot()
		rep.Telemetry = &snap
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return nil, serve.Result{}, err
	}
	return buf.Bytes(), res, nil
}

func main() {
	var o options
	var geo cliflags.Geometry
	var eccSel cliflags.ECC
	var tel cliflags.Telemetry
	var repairSel cliflags.Repair
	var traffic cliflags.Traffic
	cliflags.RegisterGeometry(flag.CommandLine, &geo,
		cliflags.Geometry{N: 90, M: 15, K: 2, Banks: 16, PerBank: 2})
	cliflags.RegisterECC(flag.CommandLine, &eccSel)
	cliflags.RegisterRepair(flag.CommandLine, &repairSel)
	cliflags.RegisterTraffic(flag.CommandLine, &traffic)
	flag.StringVar(&o.mode, "mode", "open", "client model: "+strings.Join(serve.ModeNames(), ", "))
	flag.StringVar(&o.mix, "mix", "uniform", "address mix: "+strings.Join(serve.MixNames(), ", "))
	flag.IntVar(&o.requests, "requests", 20000, "total requests")
	flag.IntVar(&o.clients, "clients", 8, "client streams")
	flag.Float64Var(&o.rate, "rate", 0.2, "open loop: mean arrivals per tick")
	flag.Float64Var(&o.writeFrac, "writefrac", 0.5, "fraction of writes")
	flag.IntVar(&o.width, "width", 32, "request width in bits (1..64)")
	cliflags.RegisterWorkers(flag.CommandLine, &o.workers,
		"modeled bank workers (0 = one per bank); fewer workers = more queueing")
	flag.IntVar(&o.batch, "batch", 32, "max requests coalesced per batch")
	flag.Int64Var(&o.scrubPeriod, "scrub-period", 2000, "ticks between admitted crossbar scrubs per worker (0 = off); total scrub work scales with -workers")
	flag.Float64Var(&o.faultSER, "faults-ser", 0, "fault overlay rate [FIT/bit] (0 = off)")
	flag.Float64Var(&o.faultHours, "faults-hours", 1, "fault overlay exposure per scrub window [hours]")
	flag.StringVar(&o.faultModel, "faults-model", "",
		"fault overlay model (e.g. stuck1; empty = transient flips); requires -faults-ser")
	cliflags.RegisterSeed(flag.CommandLine, &o.seed,
		"trace and fault seed (the report is reproducible from this)")
	schemesFlag := flag.String("schemes", "",
		"replay the identical trace under 'all' or a comma-separated list of schemes and emit the throughput-tax/area matrix instead of the standard report")
	cliflags.RegisterTelemetry(flag.CommandLine, &tel)
	flag.Parse()

	eccSel.Resolve()
	repairSel.Resolve()
	traffic.Resolve()
	o.n, o.m, o.k, o.banks, o.perBank = geo.N, geo.M, geo.K, geo.Banks, geo.PerBank
	o.ecc, o.scheme = eccSel.Enabled, eccSel.Scheme
	o.repairCfg = repairSel.Config
	o.compute, o.tenants, o.admit = traffic.Compute, traffic.Mixes, traffic.Admit
	o.telemetry = tel.Snapshot

	stop, err := tel.Serve()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stop()

	if *schemesFlag != "" {
		out, err := runSchemeMatrix(o, *schemesFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
		tel.Wait()
		return
	}

	t0 := time.Now()
	out, res, err := run(o, tel.Registry())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(t0)
	os.Stdout.Write(out)
	fmt.Fprintf(os.Stderr, "loadgen: served %d requests in %v wall (%.0f req/s wall, makespan %d ticks)\n",
		res.Stats.Requests, wall.Round(time.Millisecond), float64(res.Stats.Requests)/wall.Seconds(), res.Ticks)
	tel.Wait()
}
