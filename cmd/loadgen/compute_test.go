package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/serve"
)

// computeOpts is smokeOpts plus a compute-monopolizing tenant sharing
// the memory with an interactive one, under an admission budget.
func computeOpts(admit int64) options {
	o := smokeOpts(4)
	o.mix = "uniform"
	o.faultSER = 0
	o.compute = "search"
	o.tenants = []serve.TenantMix{
		{Name: "client", ReadFrac: 50, WriteFrac: 50},
		{Name: "batch", ComputeFrac: 100},
	}
	o.admit = admit
	return o
}

// TestDefaultReportMatchesGolden pins the no-compute CLI surface: the
// exact flags the CI smoke runs must render byte-identically to the
// checked-in pre-compute golden. Any new report field that leaks into
// the default path (a forgotten omitempty) fails here before it fails
// in CI.
func TestDefaultReportMatchesGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/golden_default.json")
	if err != nil {
		t.Fatal(err)
	}
	o := options{
		n: 90, m: 15, k: 2, banks: 16, perBank: 2, ecc: true,
		mode: "open", mix: "uniform", requests: 20000, clients: 8,
		rate: 0.2, writeFrac: 0.5, width: 32,
		batch: 32, scrubPeriod: 500, faultSER: 3e5, faultHours: 1, seed: 1,
	}
	out, _, err := run(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, golden) {
		t.Fatalf("default report drifted from testdata/golden_default.json (%d vs %d bytes)",
			len(out), len(golden))
	}
}

// TestComputeReportShapeAndReproducibility: the multi-tenant report is
// byte-reproducible at fixed flags and carries the E13 fields — the
// kernel, the admission budget, compute counts, and one SLO block per
// tenant with its own latency digest.
func TestComputeReportShapeAndReproducibility(t *testing.T) {
	a, res, err := run(computeOpts(400), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := run(computeOpts(400), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("compute report not reproducible:\n%s\n---\n%s", a, b)
	}
	if res.Stats.Errors != 0 {
		t.Fatalf("%d serve errors", res.Stats.Errors)
	}
	var rep map[string]any
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatal(err)
	}
	if rep["compute"] != "search" || rep["admit_budget"].(float64) != 400 {
		t.Fatalf("compute header wrong: compute=%v admit=%v", rep["compute"], rep["admit_budget"])
	}
	served := rep["served"].(map[string]any)
	if served["computes"].(float64) == 0 || served["compute_ticks"].(float64) == 0 {
		t.Fatalf("compute traffic missing from served block: %v", served)
	}
	tenants := rep["tenants"].([]any)
	if len(tenants) != 2 {
		t.Fatalf("want 2 tenant blocks, got %d", len(tenants))
	}
	var total float64
	for i, name := range []string{"client", "batch"} {
		tb := tenants[i].(map[string]any)
		if tb["name"] != name {
			t.Fatalf("tenant %d named %v, want %s", i, tb["name"], name)
		}
		lat := tb["latency_ticks"].(map[string]any)
		if lat["count"].(float64) != tb["requests"].(float64) {
			t.Fatalf("tenant %s: %v latencies for %v requests", name, lat["count"], tb["requests"])
		}
		if lat["p99"].(float64) < lat["p50"].(float64) {
			t.Fatalf("tenant %s: p99 %v below p50 %v", name, lat["p99"], lat["p50"])
		}
		if tb["throughput_per_kilotick"].(float64) <= 0 {
			t.Fatalf("tenant %s: no throughput", name)
		}
		total += tb["requests"].(float64)
	}
	if total != served["requests"].(float64) {
		t.Fatalf("tenant requests sum to %v of %v served", total, served["requests"])
	}
	batch := tenants[1].(map[string]any)
	if batch["computes"].(float64) != batch["requests"].(float64) {
		t.Fatalf("batch tenant not compute-only: %v", batch)
	}
}

// TestAdmitFlagProtectsClientP99 is the report-level view of the E13
// claim: the client tenant's p99 under an admission budget must be far
// below its FIFO p99 at otherwise identical flags.
func TestAdmitFlagProtectsClientP99(t *testing.T) {
	clientP99 := func(admit int64) float64 {
		out, _, err := run(computeOpts(admit), nil)
		if err != nil {
			t.Fatal(err)
		}
		var rep map[string]any
		if err := json.Unmarshal(out, &rep); err != nil {
			t.Fatal(err)
		}
		tb := rep["tenants"].([]any)[0].(map[string]any)
		return tb["latency_ticks"].(map[string]any)["p99"].(float64)
	}
	fifo, bounded := clientP99(0), clientP99(400)
	if bounded*10 > fifo {
		t.Fatalf("client p99 %v (admit=400) not an order below FIFO %v", bounded, fifo)
	}
}
