package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// smokeOpts is a small, fast configuration exercising scrubs, faults,
// and coalescing together.
func smokeOpts(workers int) options {
	return options{
		n: 90, m: 15, k: 2, banks: 8, perBank: 2, ecc: true,
		mode: "open", mix: "scan", requests: 4000, clients: 4,
		rate: 0.5, writeFrac: 0.5, width: 30,
		workers: workers, batch: 32, scrubPeriod: 500,
		faultSER: 3e5, faultHours: 1, seed: 1,
	}
}

// TestReportDeterministicFromSeed: the same options render byte-identical
// JSON — the property the CI smoke asserts on the built binary. Across
// worker counts the report legitimately differs (workers is the modeled
// queueing knob): only the served traffic is invariant, and throughput
// must improve with more workers.
func TestReportDeterministicFromSeed(t *testing.T) {
	a, resA, err := run(smokeOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := run(smokeOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different reports:\n%s\n---\n%s", a, b)
	}
	if resA.Stats.Requests != 4000 {
		t.Fatalf("served %d of 4000", resA.Stats.Requests)
	}
	// Workers is the modeled scaling knob: the same traffic is served
	// either way, and throughput improves with more workers.
	var jc, jw map[string]any
	if err := json.Unmarshal(a, &jc); err != nil {
		t.Fatal(err)
	}
	w8, _, err := run(smokeOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(w8, &jw); err != nil {
		t.Fatal(err)
	}
	if jc["served"].(map[string]any)["requests"] != jw["served"].(map[string]any)["requests"] {
		t.Fatal("served traffic depends on worker count")
	}
	if jw["throughput_per_kilotick"].(float64) <= jc["throughput_per_kilotick"].(float64) {
		t.Fatalf("throughput at 8 workers (%v) not above 2 workers (%v)",
			jw["throughput_per_kilotick"], jc["throughput_per_kilotick"])
	}
}

// TestReportShape: the report carries the fields the E9 table reads.
func TestReportShape(t *testing.T) {
	out, _, err := run(smokeOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatal(err)
	}
	served := rep["served"].(map[string]any)
	if served["requests"].(float64) != 4000 || served["errors"].(float64) != 0 {
		t.Fatalf("served block wrong: %v", served)
	}
	if served["scrubs"].(float64) == 0 || served["corrected"].(float64) == 0 {
		t.Fatalf("fault overlay inert: %v", served)
	}
	if served["coalesced"].(float64) == 0 {
		t.Fatalf("scan mix never coalesced: %v", served)
	}
	lat := rep["latency_ticks"].(map[string]any)
	if lat["count"].(float64) != 4000 || lat["p99"].(float64) < lat["p50"].(float64) {
		t.Fatalf("latency digest wrong: %v", lat)
	}
	if rep["throughput_per_kilotick"].(float64) <= 0 {
		t.Fatal("no throughput reported")
	}
	if len(rep["per_bank"].([]any)) != 8 {
		t.Fatal("per-bank loads missing")
	}
}
