package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/telemetry"
)

// smokeOpts is a small, fast configuration exercising scrubs, faults,
// and coalescing together.
func smokeOpts(workers int) options {
	return options{
		n: 90, m: 15, k: 2, banks: 8, perBank: 2, ecc: true,
		mode: "open", mix: "scan", requests: 4000, clients: 4,
		rate: 0.5, writeFrac: 0.5, width: 30,
		workers: workers, batch: 32, scrubPeriod: 500,
		faultSER: 3e5, faultHours: 1, seed: 1,
	}
}

// TestReportDeterministicFromSeed: the same options render byte-identical
// JSON — the property the CI smoke asserts on the built binary. Across
// worker counts the report legitimately differs (workers is the modeled
// queueing knob): only the served traffic is invariant, and throughput
// must improve with more workers.
func TestReportDeterministicFromSeed(t *testing.T) {
	a, resA, err := run(smokeOpts(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := run(smokeOpts(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different reports:\n%s\n---\n%s", a, b)
	}
	if resA.Stats.Requests != 4000 {
		t.Fatalf("served %d of 4000", resA.Stats.Requests)
	}
	// Workers is the modeled scaling knob: the same traffic is served
	// either way, and throughput improves with more workers.
	var jc, jw map[string]any
	if err := json.Unmarshal(a, &jc); err != nil {
		t.Fatal(err)
	}
	w8, _, err := run(smokeOpts(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(w8, &jw); err != nil {
		t.Fatal(err)
	}
	if jc["served"].(map[string]any)["requests"] != jw["served"].(map[string]any)["requests"] {
		t.Fatal("served traffic depends on worker count")
	}
	if jw["throughput_per_kilotick"].(float64) <= jc["throughput_per_kilotick"].(float64) {
		t.Fatalf("throughput at 8 workers (%v) not above 2 workers (%v)",
			jw["throughput_per_kilotick"], jc["throughput_per_kilotick"])
	}
}

// TestReportShape: the report carries the fields the E9 table reads.
func TestReportShape(t *testing.T) {
	out, _, err := run(smokeOpts(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatal(err)
	}
	served := rep["served"].(map[string]any)
	if served["requests"].(float64) != 4000 || served["errors"].(float64) != 0 {
		t.Fatalf("served block wrong: %v", served)
	}
	if served["scrubs"].(float64) == 0 || served["corrected"].(float64) == 0 {
		t.Fatalf("fault overlay inert: %v", served)
	}
	if served["coalesced"].(float64) == 0 {
		t.Fatalf("scan mix never coalesced: %v", served)
	}
	lat := rep["latency_ticks"].(map[string]any)
	if lat["count"].(float64) != 4000 || lat["p99"].(float64) < lat["p50"].(float64) {
		t.Fatalf("latency digest wrong: %v", lat)
	}
	if rep["throughput_per_kilotick"].(float64) <= 0 {
		t.Fatal("no throughput reported")
	}
	if len(rep["per_bank"].([]any)) != 8 {
		t.Fatal("per-bank loads missing")
	}
	if _, present := rep["telemetry"]; present {
		t.Fatal("telemetry key present in a default-off report")
	}
}

// TestSchemeMatrixShapeAndTax pins the -schemes sweep: every registered
// scheme reports an area point, the document is byte-reproducible at
// fixed flags, the diagonal baseline's throughput tax is identically
// zero (the serving clock's delta discipline is the priced default), and
// the word-recode schemes pay a strictly positive tax for their extra
// per-line update reads.
func TestSchemeMatrixShapeAndTax(t *testing.T) {
	// 60×60 is the geometry every registered scheme accepts, interleaved
	// widths included.
	o := smokeOpts(2)
	o.n, o.banks = 60, 4
	a, err := runSchemeMatrix(o, "all")
	if err != nil {
		t.Fatal(err)
	}
	b, err := runSchemeMatrix(o, "all")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same flags, different matrices:\n%s\n---\n%s", a, b)
	}
	var doc struct {
		Scenario string `json:"scenario"`
		Matrix   []struct {
			Scheme string `json:"scheme"`
			Area   struct {
				OverheadBits int    `json:"overhead_bits"`
				UpdateReads  int    `json:"update_reads"`
				Err          string `json:"err"`
			} `json:"area"`
			Throughput float64 `json:"throughput_per_kilotick"`
			Tax        float64 `json:"throughput_tax"`
		} `json:"scheme_matrix"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Scenario != "loadgen-schemes" {
		t.Fatalf("scenario = %q", doc.Scenario)
	}
	rows := make(map[string]int) // scheme → matrix index
	for i, r := range doc.Matrix {
		rows[r.Scheme] = i
		if r.Area.Err != "" {
			t.Errorf("%s rejected the 60×60 geometry: %s", r.Scheme, r.Area.Err)
		}
		if r.Area.OverheadBits <= 0 || r.Throughput <= 0 {
			t.Errorf("%s row incomplete: %+v", r.Scheme, r)
		}
	}
	for _, want := range []string{"dec", "diagonal", "diagonal-x2", "diagonal-x4", "hamming", "parity"} {
		if _, ok := rows[want]; !ok {
			t.Fatalf("registered scheme %s missing from matrix (got %v)", want, rows)
		}
	}
	for scheme, i := range rows {
		r := doc.Matrix[i]
		switch r.Area.UpdateReads {
		case 2: // delta discipline: no surcharge, tax identically zero
			if r.Tax != 0 {
				t.Errorf("%s: delta scheme taxed %+.4f, want exactly 0", scheme, r.Tax)
			}
		default: // word recode: strictly positive tax on a write-bearing mix
			if r.Tax <= 0 {
				t.Errorf("%s: word-recode scheme untaxed (%+.4f)", scheme, r.Tax)
			}
		}
	}
	// Check-bit cost ordering at 60×60: parity < diagonal = interleaved < hamming < dec.
	ob := func(s string) int { return doc.Matrix[rows[s]].Area.OverheadBits }
	if !(ob("parity") < ob("diagonal") && ob("diagonal") == ob("diagonal-x4") &&
		ob("diagonal") < ob("hamming") && ob("hamming") < ob("dec")) {
		t.Errorf("overhead ordering wrong: parity=%d diagonal=%d x4=%d hamming=%d dec=%d",
			ob("parity"), ob("diagonal"), ob("diagonal-x4"), ob("hamming"), ob("dec"))
	}
}

// TestTelemetryReportReproducible: the -telemetry snapshot is
// byte-reproducible at fixed flags, carries the expected series, and its
// counters agree with the served block of the same report.
func TestTelemetryReportReproducible(t *testing.T) {
	withTel := func() ([]byte, map[string]any) {
		o := smokeOpts(2)
		o.telemetry = true
		out, _, err := run(o, telemetry.New())
		if err != nil {
			t.Fatal(err)
		}
		var rep map[string]any
		if err := json.Unmarshal(out, &rep); err != nil {
			t.Fatal(err)
		}
		return out, rep
	}
	a, rep := withTel()
	b, _ := withTel()
	if !bytes.Equal(a, b) {
		t.Fatalf("telemetry report not reproducible:\n%s\n---\n%s", a, b)
	}
	raw, ok := rep["telemetry"]
	if !ok {
		t.Fatal("telemetry key missing under -telemetry")
	}
	// Round-trip through the typed snapshot and cross-check key series
	// against the served block of the same report.
	buf, _ := json.Marshal(raw)
	var snap telemetry.Snapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		t.Fatal(err)
	}
	served := rep["served"].(map[string]any)
	if got := snap.CounterFamily("serve_requests_total"); got != int64(served["requests"].(float64)) {
		t.Errorf("serve_requests_total = %d, want %v", got, served["requests"])
	}
	if got := snap.CounterFamily("pmem_scrubs_total"); got != int64(served["scrubs"].(float64)) {
		t.Errorf("pmem_scrubs_total = %d, want %v", got, served["scrubs"])
	}
	if got := snap.CounterFamily("ecc_corrections_total"); got == 0 {
		t.Error("ecc_corrections_total zero despite fault overlay")
	}
}
