// Command fig6 regenerates the paper's Figure 6: Mean-Time-To-Failure of
// a 1GB memristive memory as a function of the per-memristor soft error
// rate, for the unprotected baseline and the proposed diagonal-ECC
// design. Output is a table plus an ASCII log-log rendering.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/reliability"
)

func main() {
	points := flag.Int("points", 2, "samples per decade of SER")
	period := flag.Float64("period", 24, "hours between full-memory ECC checks (T)")
	m := flag.Int("m", 15, "ECC block side length (odd)")
	plot := flag.Bool("plot", true, "render the ASCII log-log plot")
	flag.Parse()

	model := reliability.PaperModel()
	model.CheckPeriodH = *period
	model.Geometry.M = *m
	if err := model.Geometry.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	pts := model.Fig6Sweep(*points)
	fmt.Printf("Figure 6 — 1GB memory MTTF vs memristor SER (n=%d, m=%d, T=%.0fh)\n\n",
		model.Geometry.N, model.Geometry.M, model.CheckPeriodH)
	fmt.Printf("%14s %16s %16s %14s\n", "SER [FIT/bit]", "Baseline [h]", "Proposed [h]", "Improvement")
	for _, p := range pts {
		fmt.Printf("%14.3g %16.4g %16.4g %14.4g\n", p.SER, p.BaselineMTTF, p.ProposedMTTF, p.Improvement)
	}
	ref := model.Improvement(1e-3)
	fmt.Printf("\nAt the Flash-like SER of 1e-3 FIT/bit: improvement = %.3g× (paper: >3e8, \"over eight orders of magnitude\")\n", ref)

	if *plot {
		fmt.Println()
		renderPlot(pts)
	}
}

// renderPlot draws both curves on a log-log grid, hours vs FIT/bit.
func renderPlot(pts []reliability.Point) {
	const rows, cols = 24, 68
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	lo, hi := math.Log10(pts[0].SER), math.Log10(pts[len(pts)-1].SER)
	yLo, yHi := -6.0, 18.0 // log10 hours
	put := func(ser, mttf float64, ch byte) {
		x := int((math.Log10(ser) - lo) / (hi - lo) * float64(cols-1))
		y := (math.Log10(mttf) - yLo) / (yHi - yLo)
		r := rows - 1 - int(y*float64(rows-1))
		if r >= 0 && r < rows && x >= 0 && x < cols {
			grid[r][x] = ch
		}
	}
	for _, p := range pts {
		put(p.SER, p.BaselineMTTF, 'b')
		put(p.SER, p.ProposedMTTF, 'P')
	}
	fmt.Println("log10(MTTF hours): 18 at top, -6 at bottom; x: SER 1e-5 → 1e3; P=proposed, b=baseline")
	for _, row := range grid {
		fmt.Printf("  |%s\n", row)
	}
	fmt.Printf("  +%s\n", strings.Repeat("-", cols))
}
