// Command table1 regenerates the paper's Table I: per-benchmark MAGIC
// latency (clock cycles) for the SIMPLER baseline and the ECC-extended
// schedule, the overhead percentage, and the minimal number of processing
// crossbars needed to avoid stalls.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuits"
	"repro/internal/eccsched"
)

func main() {
	row := flag.Int("row", 1020, "MEM row size (the paper's n)")
	m := flag.Int("m", 15, "ECC block side length")
	k := flag.Int("k", 8, "processing crossbars available to the scheduler")
	only := flag.String("bench", "", "run a single benchmark by name")
	verbose := flag.Bool("v", false, "print scheduling detail per benchmark")
	flag.Parse()

	cfg := eccsched.Table1Config{RowSize: *row, M: *m, K: *k}

	var results []eccsched.Result
	if *only != "" {
		bm, ok := circuits.ByName(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *only)
			os.Exit(1)
		}
		r, err := eccsched.RunBenchmark(bm, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results = append(results, r)
	} else {
		var err error
		results, err = eccsched.RunTable1(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fmt.Printf("Table I — latency (clock cycles), n=%d, m=%d, k=%d\n\n", *row, *m, *k)
	fmt.Print(eccsched.FormatTable(results))
	if *verbose {
		fmt.Println()
		fmt.Printf("%-11s %12s %12s %12s\n", "Benchmark", "InputBlocks", "CriticalOps", "StallCycles")
		for _, r := range results {
			fmt.Printf("%-11s %12d %12d %12d\n", r.Name, r.InputBlocks, r.CriticalOps, r.StallCycles)
		}
	}
}
